"""Property tests for the parallel, incremental doomed-pair engine.

Four invariants from the engine contract
(:class:`repro.core.sparse.DoomedPairEngine`):

* a budget- or round-truncated doomed set is a *subset* of the full
  fixpoint (early stops are sound, they only prune less), and the
  truncation is reported instead of silently swallowed;
* the descent result of ``generate_fusion`` is byte-identical whether
  the prune was truncated or ran to convergence (survivors always get
  the exact closure check);
* the incremental cross-level seeding equals a fresh fixpoint at every
  level of a coarsening chain;
* sharding rounds over a :class:`repro.core.shm.SharedWorkerPool`
  (workers 1/2/4) and the density-adaptive forward direction are
  byte-identical to the serial backward fixpoint.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.fault_graph as fault_graph_module
import repro.core.fusion as fusion_module
import repro.core.sparse as sparse_module
from repro.core.fault_graph import FaultGraph
from repro.core.fusion import generate_fusion
from repro.core.partition import (
    Partition,
    closure_of_labels,
    quotient_table,
)
from repro.core.product import CrossProduct
from repro.core.shm import SharedWorkerPool
from repro.core.sparse import DoomedPairEngine, ImplicationIndex, doomed_pair_keys
from repro.machines import mesi, mod_counter, shift_register

from .strategies import dfsm_strategy


def _counters(size: int):
    return [
        mod_counter(3, count_event=e, events=tuple(range(size)), name="c%d" % e)
        for e in range(size)
    ]


def _protocol_mix():
    return [
        mesi(),
        mod_counter(3, "local_read", events=mesi().events, name="rd-ctr"),
        shift_register(
            3, bit_events=("local_read", "local_write"), events=mesi().events, name="sr"
        ),
    ]


def _level_zero(machines):
    """(quotient, weak_rows, weak_cols, num_states) of the identity level."""
    product = CrossProduct(machines)
    top = product.machine
    graph = FaultGraph.from_cross_product(product, weight_cap=3)
    weak_rows, weak_cols = graph.weakest_edge_arrays()
    n = top.num_states
    return quotient_table(top, Partition.identity(n)), weak_rows, weak_cols, n


class TestTruncationSoundness:
    @settings(max_examples=60, deadline=None)
    @given(
        dfsm_strategy(max_states=6, num_events=2),
        st.data(),
        st.integers(min_value=0, max_value=20),
    )
    def test_budget_truncated_set_is_subset_of_full_fixpoint(
        self, machine, data, budget
    ):
        n = machine.num_states
        if n < 2:
            return
        quotient = quotient_table(machine, Partition.identity(n))
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = data.draw(
            st.lists(st.sampled_from(pairs), min_size=1, max_size=len(pairs))
        )
        weak_a = np.asarray([p[0] for p in chosen], dtype=np.int64)
        weak_b = np.asarray([p[1] for p in chosen], dtype=np.int64)
        full_engine = DoomedPairEngine()
        full = full_engine.prune(quotient, weak_a, weak_b, n)
        assert not full_engine.last_stats.truncated
        assert full_engine.last_stats.keys == full.size
        cut_engine = DoomedPairEngine(budget=budget)
        cut = cut_engine.prune(quotient, weak_a, weak_b, n)
        assert np.isin(cut, full).all()  # sound: truncated ⊆ full
        if not np.array_equal(cut, full):
            assert cut_engine.last_stats.truncated

    @settings(max_examples=40, deadline=None)
    @given(
        dfsm_strategy(max_states=6, num_events=2),
        st.data(),
        st.integers(min_value=1, max_value=3),
    )
    def test_round_truncated_set_is_subset_of_full_fixpoint(
        self, machine, data, max_rounds
    ):
        n = machine.num_states
        if n < 2:
            return
        quotient = quotient_table(machine, Partition.identity(n))
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = data.draw(st.lists(st.sampled_from(pairs), min_size=1, max_size=3))
        weak_a = np.asarray([p[0] for p in chosen], dtype=np.int64)
        weak_b = np.asarray([p[1] for p in chosen], dtype=np.int64)
        full = doomed_pair_keys(quotient, weak_a, weak_b, n)
        cut = doomed_pair_keys(quotient, weak_a, weak_b, n, max_rounds=max_rounds)
        assert np.isin(cut, full).all()

    def test_descent_byte_identical_under_truncation(self, monkeypatch):
        """A truncated prune only sends more candidates through the exact
        closure check — the generated fusion must not change at all."""
        monkeypatch.setattr(fault_graph_module, "SPARSE_STATE_CUTOFF", 1)
        monkeypatch.setattr(fusion_module, "DESCENT_SPARSE_CUTOFF", 1)
        machines = _protocol_mix()
        reference = generate_fusion(machines, f=1)
        monkeypatch.setattr(fusion_module, "_PRUNE_BUDGET", 7)
        truncated = generate_fusion(machines, f=1)
        assert truncated.summary() == reference.summary()
        assert [tuple(p.labels) for p in truncated.partitions] == [
            tuple(p.labels) for p in reference.partitions
        ]


class TestIncrementalSeeding:
    @settings(max_examples=50, deadline=None)
    @given(dfsm_strategy(max_states=6, num_events=2), st.data())
    def test_seeded_levels_equal_fresh_fixpoints(self, machine, data):
        """Walking an engine down a coarsening chain gives, at every
        level, the same keys as a stateless fixpoint at that level."""
        n = machine.num_states
        if n < 3:
            return
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = data.draw(st.lists(st.sampled_from(pairs), min_size=1, max_size=3))
        weak_rows = np.asarray([p[0] for p in chosen], dtype=np.int64)
        weak_cols = np.asarray([p[1] for p in chosen], dtype=np.int64)
        engine = DoomedPairEngine()
        labels = Partition.identity(n).labels
        for _level in range(3):
            partition = Partition(labels)
            quotient = quotient_table(machine, partition)
            num_blocks = partition.num_blocks
            weak_a = labels[weak_rows]
            weak_b = labels[weak_cols]
            if (weak_a == weak_b).any():
                break  # the merge glued a weakest pair: chain over
            seeded = engine.prune(
                quotient, weak_a, weak_b, num_blocks, base_labels=labels
            )
            fresh = doomed_pair_keys(quotient, weak_a, weak_b, num_blocks)
            assert np.array_equal(seeded, fresh)
            if num_blocks < 2:
                break
            # Coarsen: SP-close the merge of a drawn block pair.
            a, b = sorted(
                data.draw(
                    st.tuples(
                        st.integers(0, num_blocks - 1), st.integers(0, num_blocks - 1)
                    ).filter(lambda t: t[0] != t[1])
                )
            )
            merge_seed = np.arange(num_blocks, dtype=np.int64)
            merge_seed[b] = a
            closed = closure_of_labels(quotient, merge_seed)
            labels = closed[labels]

    def test_non_coarsening_labels_reset_the_cache(self):
        """A base_labels vector that does not coarsen the remembered level
        must fall back to a fresh (unseeded) fixpoint, not mis-seed."""
        machines = _counters(3)
        quotient, weak_rows, weak_cols, n = _level_zero(machines)
        engine = DoomedPairEngine()
        labels = Partition.identity(n).labels
        engine.prune(quotient, weak_rows, weak_cols, n, base_labels=labels)
        assert engine.seedable
        # An unrelated, non-coarsening partition of a different machine.
        other = CrossProduct(_protocol_mix())
        other_top = other.machine
        other_labels = Partition.identity(other_top.num_states).labels
        other_quotient = quotient_table(
            other_top, Partition(other_labels)
        )
        other_graph = FaultGraph.from_cross_product(other, weight_cap=3)
        ow_r, ow_c = other_graph.weakest_edge_arrays()
        seeded = engine.prune(
            other_quotient, ow_r, ow_c, other_top.num_states, base_labels=other_labels
        )
        assert engine.last_stats.seeded == 0
        fresh = doomed_pair_keys(other_quotient, ow_r, ow_c, other_top.num_states)
        assert np.array_equal(seeded, fresh)


class TestParallelPrune:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_byte_identical(self, workers, monkeypatch):
        """Sharded rounds return the serial path's arrays exactly."""
        monkeypatch.setattr(sparse_module, "_PRUNE_POOL_MIN_EXPAND", 0)
        quotient, weak_rows, weak_cols, n = _level_zero(_protocol_mix())
        serial = doomed_pair_keys(quotient, weak_rows, weak_cols, n)
        pool = SharedWorkerPool(workers) if workers > 1 else None
        try:
            pooled = doomed_pair_keys(quotient, weak_rows, weak_cols, n, pool=pool)
        finally:
            if pool is not None:
                pool.close()
        assert pooled.dtype == serial.dtype
        assert np.array_equal(pooled, serial)

    def test_forward_direction_byte_identical(self, monkeypatch):
        """Forcing every round forward finds the same fixpoint."""
        quotient, weak_rows, weak_cols, n = _level_zero(_protocol_mix())
        backward = doomed_pair_keys(quotient, weak_rows, weak_cols, n)
        monkeypatch.setattr(sparse_module, "_FORWARD_SWITCH_FACTOR", 0)
        forward = doomed_pair_keys(quotient, weak_rows, weak_cols, n)
        assert np.array_equal(backward, forward)

    def test_forward_parallel_byte_identical(self, monkeypatch):
        """Forward sweeps sharded over the pool equal the serial sweep."""
        monkeypatch.setattr(sparse_module, "_FORWARD_SWITCH_FACTOR", 0)
        monkeypatch.setattr(sparse_module, "_PRUNE_POOL_MIN_EXPAND", 0)
        quotient, weak_rows, weak_cols, n = _level_zero(_protocol_mix())
        serial = doomed_pair_keys(quotient, weak_rows, weak_cols, n)
        pool = SharedWorkerPool(2)
        try:
            pooled = doomed_pair_keys(quotient, weak_rows, weak_cols, n, pool=pool)
        finally:
            pool.close()
        assert np.array_equal(pooled, serial)

    @settings(max_examples=40, deadline=None)
    @given(dfsm_strategy(max_states=6, num_events=2), st.data())
    def test_forward_matches_backward_on_random_machines(self, machine, data):
        n = machine.num_states
        if n < 2:
            return
        quotient = quotient_table(machine, Partition.identity(n))
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = data.draw(st.lists(st.sampled_from(pairs), min_size=1, max_size=4))
        weak_a = np.asarray([p[0] for p in chosen], dtype=np.int64)
        weak_b = np.asarray([p[1] for p in chosen], dtype=np.int64)
        backward = doomed_pair_keys(quotient, weak_a, weak_b, n)
        original = sparse_module._FORWARD_SWITCH_FACTOR
        sparse_module._FORWARD_SWITCH_FACTOR = 0
        try:
            forward = doomed_pair_keys(quotient, weak_a, weak_b, n)
        finally:
            sparse_module._FORWARD_SWITCH_FACTOR = original
        assert np.array_equal(backward, forward)


class TestImplicationIndex:
    def test_index_arrays_match_reference(self):
        quotient = np.array([[1, 2], [2, 0], [2, 1]])
        index = ImplicationIndex(quotient)
        assert index.num_blocks == 3 and index.num_events == 2
        for event in range(2):
            image = quotient[:, event]
            assert np.array_equal(index.images[event], image)
            assert np.array_equal(
                index.order[event], np.argsort(image, kind="stable")
            )
            assert np.array_equal(
                index.counts[event], np.bincount(image, minlength=3)
            )
            assert np.array_equal(
                index.indptr[event],
                np.concatenate(([0], np.cumsum(np.bincount(image, minlength=3)))),
            )

    def test_reused_index_equals_rebuilt(self):
        quotient, weak_rows, weak_cols, n = _level_zero(_counters(3))
        index = ImplicationIndex(quotient, n)
        direct = doomed_pair_keys(quotient, weak_rows, weak_cols, n)
        reused = doomed_pair_keys(quotient, weak_rows, weak_cols, n, index=index)
        again = doomed_pair_keys(quotient, weak_rows, weak_cols, n, index=index)
        assert np.array_equal(direct, reused)
        assert np.array_equal(direct, again)

"""Chaos-injection property tests for the self-healing parallel engine.

The acceptance contract of the resilience layer: a seeded ``REPRO_CHAOS``
plan kills a worker at least once in **each** pooled stage — ledger leaf
joins, SP-closure batches, prune-round shards, merge-tree folds and BFS
frontier shards — and the recovered fusion output stays byte-identical
to the serial run, with zero ``/dev/shm`` segments left behind and the
recovery recorded in the ``resilience`` stopwatch stage (the benchmark
records' ``resilience_stats`` block).

Soundness of the replay is by construction: every pooled stage is a pure
function of published read-only arrays plus a picklable batch, so waves
replayed against respawned segments produce the same bytes, and the
serial degradation path *is* the reference implementation.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.fault_graph as fault_graph_module
import repro.core.fusion as fusion_module
import repro.core.product as product_module
import repro.core.sparse as sparse_module
from repro.core.fusion import generate_fusion
from repro.core.resilience import KNOWN_STAGES, OWNER_STAGES, live_owned_segments
from repro.machines import mod_counter
from repro.utils.timing import Stopwatch


def _counters(size: int):
    return [
        mod_counter(3, count_event=e, events=tuple(range(size)), name="c%d" % e)
        for e in range(size)
    ]


@pytest.fixture()
def open_gates(monkeypatch):
    """Force every pooled stage on a test-sized machine set.

    The production gates only decide *routing* (serial vs pool), never
    results, so opening them preserves byte-identity while making the
    counters-6 fusion submit work in all five stages (verified by the
    stage-coverage assertion below).
    """
    monkeypatch.setattr(sparse_module, "_POOL_MIN_CANDIDATES", 0)
    monkeypatch.setattr(sparse_module, "_POOL_MIN_MERGE", 0)
    monkeypatch.setattr(sparse_module, "_PRUNE_POOL_MIN_EXPAND", 0)
    monkeypatch.setattr(fusion_module, "_POOL_MIN_SURVIVORS", -(1 << 62))
    monkeypatch.setattr(fusion_module, "_PRUNE_AFTER_FAILURES", 0)
    monkeypatch.setattr(fusion_module, "DESCENT_SPARSE_CUTOFF", 1)
    monkeypatch.setattr(fault_graph_module, "SPARSE_STATE_CUTOFF", 1)
    monkeypatch.setattr(product_module, "_EXPLORE_POOL_MIN_FRONTIER", 2)


def _run_with_chaos(monkeypatch, chaos: str, timeout: str = ""):
    monkeypatch.setenv("REPRO_CHAOS", chaos)
    if timeout:
        monkeypatch.setenv("REPRO_FUSION_TASK_TIMEOUT", timeout)
    watch = Stopwatch()
    result = generate_fusion(_counters(6), f=1, workers=2, stopwatch=watch)
    return result, watch.extras("resilience")


def _assert_identical(result, reference):
    assert result.summary() == reference.summary()
    assert [tuple(p.labels) for p in result.partitions] == [
        tuple(p.labels) for p in reference.partitions
    ]
    for ours, theirs in zip(result.backups, reference.backups):
        assert np.array_equal(ours.transition_table, theirs.transition_table)


#: The stages a *fusion generation* run submits work in; the streaming
#: runtime's ``runtime_step`` stage never fires during ``generate_fusion``
#: and gets its own chaos coverage in
#: ``tests/unit/test_runtime.py::TestRuntimeChaos``.
FUSION_STAGES = tuple(s for s in KNOWN_STAGES if s != "runtime_step")


class TestChaosRecovery:
    def test_stage_vocabulary_is_complete(self):
        assert set(KNOWN_STAGES) == {
            "ledger_leaf", "closure_batch", "prune_shard", "merge_fold", "bfs_shard",
            "runtime_step",
        }
        # The owner-side stages (artifact-store commits, descent
        # checkpoints, and the resource governor's consult points) are a
        # separate, disjoint vocabulary: worker kills never fire there,
        # owner-side kinds only there.
        assert set(OWNER_STAGES) == {
            "store_commit", "descent_level", "segment_publish", "budget_check",
        }
        assert not set(OWNER_STAGES) & set(KNOWN_STAGES)

    def test_owner_kill_kinds_never_burn_budget_on_worker_stages(self):
        from repro.core.resilience import ChaosSpec

        spec = ChaosSpec.parse("kill_during_write=1.0,max=1,seed=2")
        for stage in KNOWN_STAGES:
            assert spec.draw(stage) is None
        assert spec.draw("store_commit") == ("kill_during_write", 0.0)

    def test_worker_kinds_never_fire_on_owner_stages(self):
        from repro.core.resilience import ChaosSpec

        spec = ChaosSpec.parse("worker_kill=1.0,max=1,seed=2")
        for stage in OWNER_STAGES:
            assert spec.draw(stage) is None
        assert spec.draw("ledger_leaf") == ("worker_kill", 0.0)

    @pytest.mark.parametrize("stage", sorted(FUSION_STAGES))
    def test_worker_kill_in_each_stage_recovers_byte_identical(
        self, stage, open_gates, monkeypatch
    ):
        """The acceptance criterion, per stage: one seeded SIGKILL lands
        on a task of exactly this stage; the pool heals, replays, and
        the fusion equals the serial run with no /dev/shm leak."""
        reference = generate_fusion(_counters(6), f=1)
        result, stats = _run_with_chaos(
            monkeypatch, "worker_kill=1.0,stages=%s,max=1,seed=7" % stage
        )
        _assert_identical(result, reference)
        assert stats["chaos"] >= 1, "the chaos plan never fired in %s" % stage
        assert stats["crashes"] >= 1, "no worker crash was observed"
        assert stats["rebuilds"] >= 1 and stats["retries"] >= 1
        assert stats["degraded"] == 0, "a single kill must heal, not degrade"
        assert live_owned_segments() == ()

    def test_task_hang_recovered_by_watchdog(self, open_gates, monkeypatch):
        """A hung task trips ``REPRO_FUSION_TASK_TIMEOUT``; the pool
        kills the stuck workers, heals and replays."""
        reference = generate_fusion(_counters(6), f=1)
        result, stats = _run_with_chaos(
            monkeypatch,
            "task_hang=1.0,stages=ledger_leaf,max=1,seed=3,hang_s=60",
            timeout="2.0",
        )
        _assert_identical(result, reference)
        assert stats["timeouts"] >= 1
        assert stats["rebuilds"] >= 1
        assert live_owned_segments() == ()

    def test_slow_tasks_change_nothing_but_wall_clock(self, open_gates, monkeypatch):
        reference = generate_fusion(_counters(6), f=1)
        result, stats = _run_with_chaos(
            monkeypatch, "slow_task=0.5,max=4,seed=11,slow_s=0.01"
        )
        _assert_identical(result, reference)
        assert stats["chaos"] >= 1
        assert stats["crashes"] == 0 and stats["degraded"] == 0
        assert live_owned_segments() == ()

    def test_unbounded_kills_degrade_to_serial_mid_fusion(
        self, open_gates, monkeypatch
    ):
        """With every task of one stage killed (no ``max`` bound), the
        retry budget runs out and the stage degrades — the fusion still
        completes serially with identical bytes, and the degradation is
        recorded in ``resilience_stats``."""
        reference = generate_fusion(_counters(6), f=1)
        monkeypatch.setenv("REPRO_FUSION_MAX_RETRIES", "1")
        result, stats = _run_with_chaos(
            monkeypatch, "worker_kill=1.0,stages=ledger_leaf,seed=5"
        )
        _assert_identical(result, reference)
        assert stats["degraded"] >= 1
        assert stats["crashes"] >= 2  # initial fault + the exhausted retry
        assert live_owned_segments() == ()

    def test_chaos_plan_is_seed_deterministic(self, open_gates, monkeypatch):
        """Same seed, same spec ⇒ identical resilience counters."""
        runs = []
        for _ in range(2):
            _result, stats = _run_with_chaos(
                monkeypatch, "worker_kill=1.0,stages=prune_shard,max=1,seed=9"
            )
            runs.append(stats)
        assert runs[0] == runs[1]

"""Property: a forced spill never changes a fusion's bytes.

The spill path (:func:`repro.core.budget.external_sort_unique`) replaces
the sparse engine's in-memory ``sort + dedup`` merges with external
sorted runs on scratch.  Because the packed pair keys are plain
integers and set union is associative, the route through disk must be
invisible in the result: a fusion generated under a deliberately tiny
``REPRO_MEMORY_BUDGET`` — every governed merge spills — must produce
partition bytes, summaries *and* ``prune_stats`` identical to the
unbounded run, at every worker count.

Randomised leg: :class:`hypothesis` drives ``external_sort_unique``
directly against ``np.unique`` over adversarial part shapes (empty
parts, all-duplicates, single elements, window smaller than any part).
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import external_sort_unique
from repro.core.fusion import generate_fusion
from repro.core.resilience import assert_no_owned_segments
from repro.machines import mod_counter
from repro.utils.timing import Stopwatch


def _counters(size: int):
    return [
        mod_counter(3, count_event=e, events=tuple(range(size)), name="c%d" % e)
        for e in range(size)
    ]


#: Forces the spill path on every governed merge: far below the
#: multi-megabyte transient peaks of the counters-8/9 merge folds, far
#: above nothing (the spill windows still make progress).
TINY_MEMORY = {"memory": 4096}

CASES = {
    "counters-8": lambda: _counters(8),
    "counters-9": lambda: _counters(9),
}


def _labels_digest(result) -> str:
    digest = hashlib.sha256()
    for partition in result.partitions:
        digest.update(np.ascontiguousarray(partition.labels).tobytes())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def references():
    """Unbounded ground truth per case, computed once for the module."""
    out = {}
    for case, build in CASES.items():
        watch = Stopwatch()
        result = generate_fusion(build(), f=1, workers=1, stopwatch=watch)
        out[case] = (
            _labels_digest(result),
            result.summary(),
            dict(watch.extras("prune")),
        )
    return out


class TestForcedSpillByteIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_spilled_fusion_matches_unbounded(self, case, workers, references):
        """Tiny memory budget, any worker count: identical bytes and stats."""
        ref_digest, ref_summary, ref_prune = references[case]
        watch = Stopwatch()
        result = generate_fusion(
            CASES[case](),
            f=1,
            workers=workers,
            budget=TINY_MEMORY,
            stopwatch=watch,
        )
        assert _labels_digest(result) == ref_digest
        assert result.summary() == ref_summary
        assert dict(watch.extras("prune")) == ref_prune
        resources = watch.extras("resources")
        assert resources["spills"] >= 1, "the tiny budget never forced a spill"
        assert resources["spilled_bytes"] > 0
        assert resources["mem_peak"] > TINY_MEMORY["memory"]
        assert_no_owned_segments()


class TestExternalMergeProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(
            st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=80),
            min_size=1,
            max_size=6,
        ),
        window=st.integers(min_value=2, max_value=32),
    )
    def test_matches_numpy_unique(self, tmp_path_factory, data, window):
        scratch = str(tmp_path_factory.mktemp("spill"))
        parts = [np.asarray(chunk, dtype=np.int64) for chunk in data]
        merged = external_sort_unique(parts, scratch, window=window)
        expected = np.unique(np.concatenate(parts)) if any(
            p.size for p in parts
        ) else np.empty(0, np.int64)
        np.testing.assert_array_equal(merged, expected)
        assert merged.tobytes() == expected.astype(np.int64).tobytes()

"""Vectorized stepping ≡ per-instance DFSM stepping, at workers 1/2/4.

The :class:`~repro.core.runtime.VectorizedRuntime` contract: packing N
instances into state vectors and stepping them with transition-table
gathers produces, instance for instance and machine for machine, exactly
the states :meth:`repro.core.dfsm.DFSM.run` produces when each instance
is stepped alone — shared broadcast streams (the composed-map fast path)
and per-instance event matrices (the gather-per-step path) alike, and
independently of whether the gathers run serially or sharded over a
1/2/4-worker :class:`~repro.core.shm.SharedWorkerPool`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.runtime as runtime_module
from repro.core.product import merged_alphabet
from repro.core.runtime import VectorizedRuntime
from repro.machines import mod_counter
from repro.utils.rng import as_generator, derive_seed

from .strategies import machine_set_strategy

RELAXED = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _reference_states(machines, streams):
    """Final state indices per (machine, instance), stepped one at a time."""
    out = np.zeros((len(machines), len(streams)), dtype=np.int64)
    for i, stream in enumerate(streams):
        for m, machine in enumerate(machines):
            out[m, i] = machine.state_index(machine.run(stream))
    return out


class TestSerialEquivalence:
    @RELAXED
    @given(data=st.data())
    def test_shared_stream_matches_per_instance_runs(self, data):
        machines = data.draw(machine_set_strategy(max_machines=3, max_states=3))
        alphabet = merged_alphabet(machines) or (0,)
        stream = data.draw(
            st.lists(st.sampled_from(list(alphabet)), min_size=0, max_size=25)
        )
        num_instances = data.draw(st.integers(min_value=1, max_value=5))
        with VectorizedRuntime(machines, num_instances, workers=1) as runtime:
            runtime.apply_stream(stream)
            expected = _reference_states(machines, [stream] * num_instances)
            assert np.array_equal(runtime.visible_states, expected)
            assert np.array_equal(runtime.true_states, expected)
            assert runtime.is_consistent()

    @RELAXED
    @given(data=st.data())
    def test_event_matrix_matches_per_instance_runs(self, data):
        machines = data.draw(machine_set_strategy(max_machines=3, max_states=3))
        alphabet = merged_alphabet(machines) or (0,)
        num_instances = data.draw(st.integers(min_value=1, max_value=5))
        num_steps = data.draw(st.integers(min_value=0, max_value=15))
        streams = [
            data.draw(
                st.lists(
                    st.sampled_from(list(alphabet)),
                    min_size=num_steps,
                    max_size=num_steps,
                )
            )
            for _ in range(num_instances)
        ]
        with VectorizedRuntime(machines, num_instances, workers=1) as runtime:
            if num_steps:
                matrix = np.stack(
                    [runtime.encode_events(s) for s in streams], axis=1
                )
                runtime.apply_event_matrix(matrix)
            expected = _reference_states(machines, streams)
            assert np.array_equal(runtime.visible_states, expected)

    @RELAXED
    @given(data=st.data())
    def test_foreign_events_are_ignored_like_dfsm_step(self, data):
        """Events outside a machine's alphabet leave it put — the global
        tables' identity columns must reproduce DFSM.step exactly."""
        machines = data.draw(machine_set_strategy(max_machines=3, max_states=3))
        # Widen the stream alphabet past every machine's own events.
        stream = data.draw(
            st.lists(st.sampled_from([0, 1, "alien", "noise"]), max_size=20)
        )
        with VectorizedRuntime(machines, 3, workers=1) as runtime:
            runtime.apply_stream(stream)
            expected = _reference_states(machines, [stream] * 3)
            assert np.array_equal(runtime.visible_states, expected)


@pytest.mark.parametrize("workers", [1, 2, 4])
class TestWorkerEquivalence:
    """The acceptance criterion: batch ≡ per-instance at workers 1/2/4.

    The pool-minimum gate is opened so test-sized fleets actually shard;
    routing (serial vs pooled, and the shard count) must never change
    results.
    """

    def _machines(self, seed):
        generator = as_generator(derive_seed(seed, "runtime-workers"))
        size = int(generator.integers(3, 5))
        events = tuple(range(size))
        machines = [
            mod_counter(
                int(generator.integers(2, 4)),
                count_event=e,
                events=events,
                name="w%d" % e,
            )
            for e in events
        ]
        return machines, events

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_event_matrix_equivalence(self, workers, seed, monkeypatch):
        monkeypatch.setattr(runtime_module, "_RUNTIME_POOL_MIN_INSTANCES", 1)
        machines, events = self._machines(seed)
        generator = as_generator(derive_seed(seed, "runtime-workers", workers))
        num_instances = 23
        matrix = generator.integers(0, len(events), size=(12, num_instances))
        streams = [list(matrix[:, i]) for i in range(num_instances)]
        with VectorizedRuntime(machines, num_instances, workers=workers) as runtime:
            runtime.apply_event_matrix(matrix)
            expected = _reference_states(machines, streams)
            assert np.array_equal(runtime.visible_states, expected)
            assert np.array_equal(runtime.true_states, expected)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_shared_stream_equivalence_with_faults(self, workers, seed, monkeypatch):
        """Crashed cells must stay frozen and true states keep moving,
        identically on every worker count."""
        monkeypatch.setattr(runtime_module, "_RUNTIME_POOL_MIN_INSTANCES", 1)
        machines, events = self._machines(seed)
        generator = as_generator(derive_seed(seed, "runtime-stream", workers))
        num_instances = 17
        stream = list(generator.integers(0, len(events), size=20))
        crash_at = [int(x) for x in generator.choice(num_instances, 4, replace=False)]
        with VectorizedRuntime(machines, num_instances, workers=workers) as pooled:
            with VectorizedRuntime(machines, num_instances, workers=1) as serial:
                for runtime in (pooled, serial):
                    runtime.apply_stream(stream[:7])
                    runtime.crash_instances(0, crash_at)
                    runtime.apply_stream(stream[7:])
                assert np.array_equal(pooled.visible_states, serial.visible_states)
                assert np.array_equal(pooled.true_states, serial.true_states)
                assert np.array_equal(pooled.statuses, serial.statuses)

"""Property tests for the shared-memory parallel ledger build and the
incremental per-backup ledger maintenance.

Two invariants from the engine contract:

* fanning the pigeonhole leaf tasks out over a
  :class:`repro.core.shm.SharedWorkerPool` returns *byte-identical*
  arrays to the serial path, for every worker count (the pool only
  changes wall-clock, never results);
* maintaining the ledger incrementally — the cached base join plus one
  fold per backup, which is what ``FaultGraph`` does on cap escalation —
  equals a from-scratch join over all machines, on random machines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.fault_graph as fault_graph_module
from repro.core.fault_graph import FaultGraph
from repro.core.product import CrossProduct
from repro.core.shm import SharedWorkerPool
from repro.core.sparse import LedgerBuilder, PairLedger, low_weight_pairs
from repro.machines import mesi, mod_counter, shift_register

from .strategies import partition_strategy


def _counters(size: int):
    return [
        mod_counter(3, count_event=e, events=tuple(range(size)), name="c%d" % e)
        for e in range(size)
    ]


def _protocol_mix():
    return [
        mesi(),
        mod_counter(3, "local_read", events=mesi().events, name="rd-ctr"),
        shift_register(
            3, bit_events=("local_read", "local_write"), events=mesi().events, name="sr"
        ),
    ]


MACHINE_SETS = {
    "counters-6": lambda: _counters(6),
    "mesi-mix": _protocol_mix,
}


class TestParallelLedgerBuild:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("case", sorted(MACHINE_SETS))
    def test_parallel_build_byte_identical_to_serial(self, case, workers, monkeypatch):
        """max_workers ∈ {1, 2, 4} all produce the serial path's arrays."""
        import repro.core.sparse as sparse_module

        # These deliberately small machines are below the minimum-work
        # gate; disable it so workers>1 really exercises the pooled path.
        monkeypatch.setattr(sparse_module, "_POOL_MIN_CANDIDATES", 0)
        product = CrossProduct(MACHINE_SETS[case]())
        partitions = product.component_partitions()
        caps = [1, 2, min(3, len(partitions))]
        pool = SharedWorkerPool(workers) if workers > 1 else None
        try:
            builder = LedgerBuilder(partitions, product.num_states, pool=pool)
            for cap in sorted(set(caps)):
                rows, cols, weights = low_weight_pairs(
                    partitions, product.num_states, cap
                )
                built = builder.base(cap)
                assert built.cap == cap
                assert built.rows.dtype == rows.dtype
                assert np.array_equal(built.rows, rows)
                assert np.array_equal(built.cols, cols)
                assert np.array_equal(built.weights, weights)
        finally:
            if pool is not None:
                pool.close()

    def test_builder_caches_and_survives_pool_close(self, monkeypatch):
        import repro.core.sparse as sparse_module

        monkeypatch.setattr(sparse_module, "_POOL_MIN_CANDIDATES", 0)
        product = CrossProduct(_counters(5))
        partitions = product.component_partitions()
        pool = SharedWorkerPool(2)
        builder = LedgerBuilder(partitions, product.num_states, pool=pool)
        first = builder.base(2)
        assert builder.base(2) is first  # cached, not re-joined
        pool.close()
        # After the pool closes, un-cached caps fall back to the serial
        # path and still match the reference.
        escalated = builder.base(3)
        rows, cols, weights = low_weight_pairs(partitions, product.num_states, 3)
        assert np.array_equal(escalated.rows, rows)
        assert np.array_equal(escalated.weights, weights)


class TestIncrementalLedgerMaintenance:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(partition_strategy(n), min_size=1, max_size=4),
                st.lists(partition_strategy(n), min_size=0, max_size=3),
                st.integers(min_value=1, max_value=4),
            )
        )
    )
    def test_base_plus_folds_equals_from_scratch(self, payload):
        """LedgerBuilder.ledger(cap, extras) == one join over everything."""
        n, base, extras, cap = payload
        cap = min(cap, len(base))
        builder = LedgerBuilder(base, n)
        incremental = builder.ledger(cap, extras)
        rebuilt = PairLedger.from_partitions(list(base) + list(extras), n, cap)
        assert incremental.cap == rebuilt.cap
        assert np.array_equal(incremental.rows, rebuilt.rows)
        assert np.array_equal(incremental.cols, rebuilt.cols)
        assert np.array_equal(incremental.weights, rebuilt.weights)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=7).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(partition_strategy(n), min_size=1, max_size=3),
                st.lists(partition_strategy(n), min_size=1, max_size=3),
            )
        )
    )
    def test_graph_escalation_matches_fresh_graph(self, payload):
        """A with_partition chain that escalates its cap equals a fresh
        build over all partitions — the per-backup update never re-joins."""
        n, base, extras = payload
        graph = FaultGraph(n, base, mode="sparse", weight_cap=1)
        graph.dmin()  # materialise the cap-1 ledger before the folds
        for extra in extras:
            graph = graph.with_partition(extra)
        fresh = FaultGraph(n, list(base) + list(extras), mode="sparse")
        dense = FaultGraph(n, list(base) + list(extras), mode="dense")
        assert graph.dmin() == fresh.dmin() == dense.dmin()
        assert graph.weakest_edges() == dense.weakest_edges()
        for threshold in range(0, graph.num_machines + 2):
            assert graph.edges_below(threshold) == dense.edges_below(threshold)

    def test_escalation_reuses_cached_base_joins(self, monkeypatch):
        """Cap escalation on a descendant graph consults the shared
        builder's cache instead of re-running low_weight_pairs over the
        grown machine list."""
        import repro.core.sparse as sparse_module

        product = CrossProduct(_counters(4))
        partitions = product.component_partitions()
        graph = FaultGraph(
            product.num_states, partitions, mode="sparse", weight_cap=2
        )
        graph.dmin()
        child = graph.with_partition(partitions[0])

        calls = []
        original = sparse_module._plan_leaf_tasks

        def counting_plan(label_list, cap, budget, leaf_target=sparse_module._LEAF_PAIR_TARGET):
            calls.append((len(label_list), cap))
            return original(label_list, cap, budget, leaf_target)

        monkeypatch.setattr(sparse_module, "_plan_leaf_tasks", counting_plan)
        # Force an escalation past the folded ledger's cap: the only join
        # planned must be over the 4 base machines, never the 5-machine list.
        child.edges_below(4)
        assert calls and all(machine_count == 4 for machine_count, _ in calls)


class TestParallelMergeTree:
    """The worker-side pairwise merge tree equals the owner's serial fold."""

    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("num_parts", [3, 5, 9])
    def test_tree_union_matches_serial(self, dtype, workers, num_parts):
        import repro.core.sparse as sparse_module
        from repro.core.shm import SharedScratch

        rng = np.random.default_rng(num_parts * 10 + workers)
        parts = [
            np.unique(rng.integers(0, 5000, size=rng.integers(0, 800)))
            .astype(dtype)
            for _ in range(num_parts)
        ]
        reference = np.unique(np.concatenate(parts)).astype(dtype)
        pool = SharedWorkerPool(workers)
        try:
            scratch = SharedScratch(pool, dtype=dtype)
            merged = sparse_module._pool_merge_tree(pool, scratch, parts)
            scratch.close()
        finally:
            pool.close()
        assert merged.dtype == reference.dtype
        assert np.array_equal(merged, reference)

    def test_ledger_build_through_merge_tree_byte_identical(self, monkeypatch):
        """With the merge-tree gate open, the pooled build (leaves sorted
        on workers, folded by the tree) still equals the serial arrays."""
        import repro.core.sparse as sparse_module

        monkeypatch.setattr(sparse_module, "_POOL_MIN_CANDIDATES", 0)
        monkeypatch.setattr(sparse_module, "_POOL_MIN_MERGE", 0)
        product = CrossProduct(_protocol_mix())
        partitions = product.component_partitions()
        pool = SharedWorkerPool(2)
        try:
            builder = LedgerBuilder(partitions, product.num_states, pool=pool)
            for cap in (2, 3):
                rows, cols, weights = low_weight_pairs(
                    partitions, product.num_states, cap
                )
                built = builder.base(cap)
                assert built.rows.dtype == rows.dtype
                assert np.array_equal(built.rows, rows)
                assert np.array_equal(built.cols, cols)
                assert np.array_equal(built.weights, weights)
        finally:
            pool.close()

    def test_prune_rounds_through_merge_tree_byte_identical(self, monkeypatch):
        """Backward prune rounds folded by the tree equal the serial set."""
        import repro.core.sparse as sparse_module
        from repro.core.partition import Partition, quotient_table
        from repro.core.sparse import doomed_pair_keys

        monkeypatch.setattr(sparse_module, "_PRUNE_POOL_MIN_EXPAND", 0)
        monkeypatch.setattr(sparse_module, "_POOL_MIN_MERGE", 0)
        product = CrossProduct(_protocol_mix())
        graph = FaultGraph.from_cross_product(
            product, mode="sparse", weight_cap=2
        )
        weak_rows, weak_cols = graph.weakest_edge_arrays()
        quotient = quotient_table(
            product.machine, Partition.identity(product.num_states)
        )
        serial = doomed_pair_keys(
            quotient, weak_rows, weak_cols, product.num_states
        )
        pool = SharedWorkerPool(2)
        try:
            pooled = doomed_pair_keys(
                quotient, weak_rows, weak_cols, product.num_states, pool=pool
            )
        finally:
            pool.close()
        assert pooled.dtype == serial.dtype
        assert np.array_equal(pooled, serial)


class TestParallelExploration:
    """Sharding the BFS frontier expansion never changes discovery order."""

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("case", sorted(MACHINE_SETS))
    def test_pooled_walk_identical_to_serial(self, case, workers, monkeypatch):
        import repro.core.product as product_module

        monkeypatch.setattr(product_module, "_EXPLORE_POOL_MIN_FRONTIER", 1)
        serial = CrossProduct(MACHINE_SETS[case]())
        pool = SharedWorkerPool(workers)
        try:
            pooled = CrossProduct(MACHINE_SETS[case](), pool=pool)
        finally:
            pool.close()
        assert pooled.state_tuples() == serial.state_tuples()
        assert np.array_equal(
            pooled.machine.transition_table, serial.machine.transition_table
        )
        assert pooled.machine.events == serial.machine.events

"""Property-based tests for the end-to-end simulator.

The key invariant (Theorem 6 in operational form): for any workload and
any fault plan within the system's budget — up to ``f`` crashes for a
crash-fused system, up to ``f`` liars for a Byzantine-fused system — the
run ends with every server back in its ground-truth state.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machines import mod_counter
from repro.simulation import (
    DistributedSystem,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    WorkloadGenerator,
)

RELAXED = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _counters(count: int = 3):
    events = tuple(range(count))
    return [
        mod_counter(3, count_event=e, events=events, name="node-%d" % e) for e in events
    ]


@st.composite
def crash_plan_strategy(draw, server_names, max_faults, workload_length):
    count = draw(st.integers(min_value=0, max_value=max_faults))
    victims = draw(
        st.lists(st.sampled_from(list(server_names)), min_size=count, max_size=count, unique=True)
    )
    events = []
    for victim in victims:
        when = draw(st.integers(min_value=0, max_value=workload_length))
        events.append(FaultEvent(victim, FaultKind.CRASH, when))
    return FaultPlan(tuple(events))


@pytest.mark.parametrize("engine", ["vectorized", "python"])
class TestSimulatorInvariants:
    """Each invariant holds on both execution engines — the vectorized
    gather path (the default) and the seed's per-server python path —
    so the fast path can never silently diverge from the reference."""

    @RELAXED
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=10_000))
    def test_any_single_crash_is_recovered(self, data, seed, engine):
        machines = _counters(3)
        system = DistributedSystem.with_fusion_backups(machines, f=1, engine=engine)
        workload = WorkloadGenerator((0, 1, 2), seed=seed).uniform(30)
        plan = data.draw(
            crash_plan_strategy(system.server_names(), max_faults=1, workload_length=len(workload))
        )
        report = system.run(workload, fault_plan=plan)
        assert report.consistent
        assert report.faults_injected == len(plan)

    @RELAXED
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=10_000))
    def test_up_to_two_crashes_with_f2_fusion(self, data, seed, engine):
        machines = _counters(3)
        system = DistributedSystem.with_fusion_backups(machines, f=2, engine=engine)
        workload = WorkloadGenerator((0, 1, 2), seed=seed).uniform(25)
        plan = data.draw(
            crash_plan_strategy(system.server_names(), max_faults=2, workload_length=len(workload))
        )
        report = system.run(workload, fault_plan=plan)
        assert report.consistent

    @RELAXED
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        victim_index=st.integers(min_value=0, max_value=2),
        when=st.integers(min_value=0, max_value=20),
    )
    def test_single_byzantine_fault_is_corrected(self, seed, victim_index, when, engine):
        machines = _counters(3)
        system = DistributedSystem.with_fusion_backups(machines, f=1, byzantine=True, engine=engine)
        workload = WorkloadGenerator((0, 1, 2), seed=seed).uniform(20)
        victim = machines[victim_index].name
        plan = FaultInjector(system.server_names(), seed=seed).byzantine_plan([victim], after_event=when)
        report = system.run(workload, fault_plan=plan)
        assert report.consistent

    @RELAXED
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=10_000))
    def test_replication_matches_fusion_consistency(self, data, seed, engine):
        machines = _counters(3)
        workload = WorkloadGenerator((0, 1, 2), seed=seed).uniform(20)
        fusion_system = DistributedSystem.with_fusion_backups(machines, f=1, engine=engine)
        replication_system = DistributedSystem.with_replication(machines, f=1, engine=engine)
        victim = data.draw(st.sampled_from([m.name for m in machines]))
        when = data.draw(st.integers(min_value=0, max_value=len(workload)))
        for system in (fusion_system, replication_system):
            plan = FaultInjector(system.server_names(), seed=seed).crash_plan([victim], after_event=when)
            report = system.run(workload, fault_plan=plan)
            assert report.consistent, system.backup_scheme

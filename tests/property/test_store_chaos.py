"""Crash-durability property tests: SIGKILL the owner, resume, compare.

The artifact store's acceptance contract, proven process-for-real:

* ``kill_during_write`` SIGKILLs the owner *mid artifact commit*,
  leaving a deliberately torn file at the final name — the restarted
  run must quarantine it, recompute, and finish with bytes identical
  to an undisturbed run.
* ``kill_between_levels`` SIGKILLs the owner right after a descent
  level checkpoint commits — the restarted run must resume from that
  committed level (never from scratch) and produce identical bytes.
* In both cases the dead owner's advisory lock is reclaimed by the
  restarted run and zero lock files survive the rerun.
* Two live processes sharing one store serialise on the run lock: one
  computes, the other blocks and then warm-loads the committed result.
* SIGINT during a hung pooled task tears the worker pool down without
  stranding a single owned ``/dev/shm`` segment.
"""

from __future__ import annotations

import glob
import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Child: one store-backed fusion run; prints a JSON line with the
#: summary, a digest of the partition labels, and the store counters.
_FUSION_CHILD = r"""
import hashlib, json, sys
from repro.core.fusion import generate_fusion
from repro.machines import mod_counter
from repro.utils.timing import Stopwatch

store_root = sys.argv[1]
machines = [
    mod_counter(3, count_event=e, events=tuple(range(6)), name="c%d" % e)
    for e in range(6)
]
watch = Stopwatch()
result = generate_fusion(machines, 3, store=store_root, stopwatch=watch)
labels = hashlib.sha256()
for partition in result.partitions:
    labels.update(partition.labels.tobytes())
print(json.dumps({
    "summary": result.summary(),
    "labels": labels.hexdigest(),
    "store": watch.extras("store"),
    "stages": sorted(watch.as_dict()),
}))
"""


def _run_child(store_root: str, chaos: str = "", timeout: float = 120.0):
    env = dict(os.environ, PYTHONPATH=_SRC_DIR)
    env.pop("REPRO_CHAOS", None)
    if chaos:
        env["REPRO_CHAOS"] = chaos
    return subprocess.run(
        [sys.executable, "-c", _FUSION_CHILD, store_root],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def _reference(tmp_path) -> dict:
    """An undisturbed run against a throwaway store: the byte oracle."""
    root = str(tmp_path / "reference-store")
    completed = _run_child(root)
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout)


def _lock_files(store_root: str):
    return glob.glob(os.path.join(store_root, "*", "*.lock"))


class TestCrashRecovery:
    @pytest.mark.parametrize(
        "chaos",
        [
            "kill_during_write=1.0,max=1,seed=5",
            "kill_between_levels=1.0,max=1,seed=3",
        ],
        ids=["kill_during_write", "kill_between_levels"],
    )
    def test_sigkilled_run_resumes_byte_identical(self, tmp_path, chaos):
        reference = _reference(tmp_path)
        store_root = str(tmp_path / "store")

        crashed = _run_child(store_root, chaos=chaos)
        assert crashed.returncode == -signal.SIGKILL, (
            "the chaos plan must SIGKILL the owner; got rc=%s stderr=%s"
            % (crashed.returncode, crashed.stderr)
        )
        assert _lock_files(store_root), "the dead owner must leave its lock behind"

        resumed = _run_child(store_root)
        assert resumed.returncode == 0, resumed.stderr
        payload = json.loads(resumed.stdout)
        assert payload["summary"] == reference["summary"]
        assert payload["labels"] == reference["labels"]
        assert payload["store"]["stale_locks"] >= 1, (
            "the resumed run must reclaim the dead owner's lock"
        )
        assert _lock_files(store_root) == [], "no lock may survive a clean finish"

    def test_kill_during_write_leaves_torn_artifact_then_quarantines(self, tmp_path):
        reference = _reference(tmp_path)
        store_root = str(tmp_path / "store")
        crashed = _run_child(store_root, chaos="kill_during_write=1.0,max=1,seed=5")
        assert crashed.returncode == -signal.SIGKILL

        resumed = _run_child(store_root)
        assert resumed.returncode == 0, resumed.stderr
        payload = json.loads(resumed.stdout)
        assert payload["store"]["quarantined"] >= 1, (
            "the torn final-name artifact must be quarantined, not loaded"
        )
        quarantined = glob.glob(os.path.join(store_root, "*", "quarantine", "*"))
        assert quarantined, "quarantined files must be kept aside for forensics"
        assert payload["labels"] == reference["labels"]

    def test_kill_between_levels_resumes_from_checkpoint(self, tmp_path):
        reference = _reference(tmp_path)
        store_root = str(tmp_path / "store")
        crashed = _run_child(store_root, chaos="kill_between_levels=1.0,max=1,seed=3")
        assert crashed.returncode == -signal.SIGKILL
        checkpoints = glob.glob(os.path.join(store_root, "*", "descent-*.npz"))
        assert checkpoints, "the kill fires only after a checkpoint committed"

        resumed = _run_child(store_root)
        assert resumed.returncode == 0, resumed.stderr
        payload = json.loads(resumed.stdout)
        assert payload["store"]["resumed_levels"] >= 1, (
            "the restarted descent must start from the committed level"
        )
        assert payload["labels"] == reference["labels"]


class TestTwoProcessContention:
    def test_loser_blocks_then_warm_loads(self, tmp_path):
        reference = _reference(tmp_path)
        store_root = str(tmp_path / "store")
        env = dict(os.environ, PYTHONPATH=_SRC_DIR)
        env.pop("REPRO_CHAOS", None)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _FUSION_CHILD, store_root],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        payloads = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            payloads.append(json.loads(out))

        for payload in payloads:
            assert payload["summary"] == reference["summary"]
            assert payload["labels"] == reference["labels"]
        # Exactly one process computed; the other serialised on the run
        # lock and reused its artifacts.  The loser may still have raced
        # the winner to the machines.npz manifest (benign: identical
        # bytes, atomic replace), so its commit count is at most that
        # one — never the >= 3 commits (product + ledger + checkpoints +
        # result) a computing run performs — and it must not have run
        # any compute stage at all.
        payloads.sort(key=lambda p: p["store"]["commits"])
        loser, winner = payloads
        assert loser["store"]["commits"] <= 1, (
            "the losing process must warm-load, not recompute"
        )
        assert winner["store"]["commits"] >= 3, (
            "the winning process must commit its artifacts"
        )
        for stage in ("product_build", "ledger_build", "descent"):
            assert stage not in loser["stages"], (
                "the losing process recomputed %s" % stage
            )
            assert stage in winner["stages"]
        assert _lock_files(store_root) == []


class TestSigintTeardown:
    def test_sigint_mid_hang_leaves_zero_owned_segments(self, tmp_path):
        """Ctrl-C while a pooled task hangs: the pool must hard-kill its
        workers and unlink every owned segment instead of deadlocking in
        the executor join (satellite of the durability PR; the fix is
        ``SharedWorkerPool.interrupt``)."""
        child = r"""
import sys
from repro.core.fusion import generate_fusion
from repro.core.resilience import live_owned_segments
from repro.machines import mod_counter
machines = [
    mod_counter(3, count_event=e, events=tuple(range(9)), name="c%d" % e)
    for e in range(9)
]
print("STARTING", flush=True)
try:
    generate_fusion(machines, 2, workers=2)
    print("FINISHED-UNINTERRUPTED", flush=True)
except KeyboardInterrupt:
    leaked = live_owned_segments()
    print("LEAKED %r" % (leaked,) if leaked else "CLEAN", flush=True)
"""
        env = dict(
            os.environ,
            PYTHONPATH=_SRC_DIR,
            REPRO_FUSION_WORKERS="2",
            REPRO_CHAOS="task_hang=1.0,stages=ledger_leaf,max=1,seed=1,hang_s=120",
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", child],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "STARTING"
            # Give the run time to publish bundles and hit the hung wave.
            time.sleep(3.0)
            os.kill(proc.pid, signal.SIGINT)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, err
        assert out.strip() == "CLEAN", out

"""Theorem 2 in operation, across the machine zoo and f = 1..3.

A system fused for ``f`` crash faults (``dmin = f + 1``) tolerates
``⌊f/2⌋`` Byzantine liars: the Algorithm-3 vote discounts them and the
supervisor corrects their state.  One liar more and the majority
argument collapses — the supervised system must report DEGRADED (with
culprits named) rather than ever restore a possibly-wrong state.

Every schedule is seeded through :mod:`repro.utils.rng`, so each case
replays the same victims and corruption targets run after run.
"""

from __future__ import annotations

import pytest

from repro.core.fusion import generate_fusion
from repro.machines import mesi, mod_counter, parity_checker, tcp_simplified
from repro.simulation import DistributedSystem, FaultInjector
from repro.utils.rng import as_generator, derive_seed

EVENTS = ("a", "b", "c")
WORKLOAD = list("abacbcab") * 3
SEEDS = list(range(4))
F_VALUES = [1, 2, 3]


def _zoo():
    """Heterogeneous originals: protocol, cache-coherence, parity, counter."""
    return [
        tcp_simplified(events=EVENTS),
        mesi(events=EVENTS),
        parity_checker("a", events=EVENTS, name="parity-a"),
        mod_counter(3, count_event="b", events=EVENTS, name="count-b"),
    ]


@pytest.fixture(scope="module", params=F_VALUES)
def fused(request):
    f = request.param
    return f, generate_fusion(_zoo(), f)


@pytest.fixture(scope="module")
def reference_states(fused):
    f, fusion = fused
    system = DistributedSystem.with_fusion_backups(_zoo(), f=f, fusion=fusion)
    report = system.run(WORKLOAD)
    assert report.consistent
    return system.states()


def _byzantine_plan(system, liars: int, seed: int):
    injector = FaultInjector(
        system.server_names(), seed=derive_seed(seed, "theorem2-plan", liars)
    )
    rng = as_generator(derive_seed(seed, "theorem2-victims", liars))
    names = list(system.server_names())
    victims = [names[int(i)] for i in rng.choice(len(names), size=liars, replace=False)]
    after = int(rng.integers(1, len(WORKLOAD)))
    return injector.byzantine_plan(victims, after_event=after), tuple(victims)


class TestWithinBudgetLiarsAreCorrected:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_floor_f_half_liars_detected_and_corrected(
        self, fused, reference_states, seed
    ):
        f, fusion = fused
        liars = f // 2
        system = DistributedSystem.with_fusion_backups(
            _zoo(), f=f, fusion=fusion, supervised=True
        )
        plan, victims = _byzantine_plan(system, liars, seed)
        report = system.run(WORKLOAD, fault_plan=plan, rng=derive_seed(seed, "corrupt"))
        assert report.status == "healthy"
        assert report.consistent
        assert system.states() == reference_states
        if liars:
            # The vote flagged exactly the liars and restored them.
            recoveries = system.trace.recoveries()
            flagged = set()
            for record in recoveries:
                flagged.update(record.payload["suspected_byzantine"])
            assert flagged == set(victims)
            assert system.supervisor.total_liars_detected == liars

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_mixed_budget_crash_plus_liars(self, fused, reference_states, seed):
        """Crashes and liars together, weighted 1 and 2, up to exactly f."""
        f, fusion = fused
        liars = f // 2
        crashes = f - 2 * liars
        system = DistributedSystem.with_fusion_backups(
            _zoo(), f=f, fusion=fusion, supervised=True
        )
        injector = FaultInjector(
            system.server_names(), seed=derive_seed(seed, "mixed-plan", f)
        )
        plan = injector.random_plan(crashes, liars, len(WORKLOAD))
        report = system.run(WORKLOAD, fault_plan=plan, rng=derive_seed(seed, "mixed"))
        assert report.status == "healthy"
        assert report.consistent
        assert system.states() == reference_states


class TestPastBudgetLiarsDegrade:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_one_liar_too_many_is_degraded(self, fused, seed):
        f, fusion = fused
        liars = f // 2 + 1
        system = DistributedSystem.with_fusion_backups(
            _zoo(), f=f, fusion=fusion, supervised=True
        )
        plan, victims = _byzantine_plan(system, liars, seed)
        report = system.run(WORKLOAD, fault_plan=plan, rng=derive_seed(seed, "corrupt"))
        assert report.status == "degraded"
        assert report.culprits, "a degraded report must name culprits"
        assert not report.consistent
        assert system.supervisor is not None
        assert system.supervisor.status.value == "degraded"
        assert system.supervisor.degraded_reason

"""Property tests: the vectorised fast paths agree with reference code.

The performance core (vectorised SP closure, ``refines``/``meet``,
condensed fault-graph ``dmin``/``weakest_edges``, the doomed-pair pruning
filter) re-implements operations that have short, obviously-correct
formulations.  These tests pit each fast path against such a reference on
random machines and partitions, so any future optimisation that drifts
semantically fails here first.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FaultGraph, Partition
from repro.core.fault_graph import condensed_indices, separation_matrix
from repro.core.fusion import _doomed_pairs
from repro.core.partition import (
    _closure_labels_scalar,
    closed_coarsening,
    closure_of_labels,
    is_closed_partition,
    quotient_table,
)

from .strategies import dfsm_strategy, partition_strategy


# ----------------------------------------------------------------------
# Reference implementations (straightforward, unvectorised)
# ----------------------------------------------------------------------
def ref_refines(fine: Partition, coarse: Partition) -> bool:
    seen = {}
    for mine, theirs in zip(fine.labels.tolist(), coarse.labels.tolist()):
        if mine in seen and seen[mine] != theirs:
            return False
        seen[mine] = theirs
    return True


def ref_meet(first: Partition, second: Partition) -> Partition:
    parent = list(range(first.num_elements))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for partition in (first, second):
        firsts = {}
        for element, label in enumerate(partition.labels.tolist()):
            if label in firsts:
                parent[find(element)] = find(firsts[label])
            else:
                firsts[label] = element
    return Partition([find(i) for i in range(first.num_elements)])


def ref_dmin(graph: FaultGraph) -> int:
    if graph.num_states == 1:
        return graph.num_machines
    weights = np.zeros((graph.num_states, graph.num_states), dtype=np.int64)
    for partition in graph.partitions:
        weights += separation_matrix(partition)
    return int(weights[~np.eye(graph.num_states, dtype=bool)].min())


def ref_weakest_edges(graph: FaultGraph):
    if graph.num_states == 1:
        return []
    d = ref_dmin(graph)
    dense = graph.weight_matrix
    out = []
    for i in range(graph.num_states):
        for j in range(i + 1, graph.num_states):
            if dense[i, j] == d:
                out.append((i, j))
    return out


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def machine_and_partition(draw, max_states=6, num_events=2):
    machine = draw(dfsm_strategy(max_states=max_states, num_events=num_events))
    partition = draw(partition_strategy(machine.num_states))
    return machine, partition


@st.composite
def machine_partition_strategy(draw):
    return machine_and_partition(draw)


@st.composite
def graph_strategy(draw, max_states=5, max_machines=3):
    n = draw(st.integers(min_value=1, max_value=max_states))
    count = draw(st.integers(min_value=1, max_value=max_machines))
    partitions = [draw(partition_strategy(n)) for _ in range(count)]
    return FaultGraph(n, partitions)


# ----------------------------------------------------------------------
# Partition lattice operations
# ----------------------------------------------------------------------
class TestPartitionOperations:
    @given(
        st.integers(min_value=1, max_value=7).flatmap(
            lambda n: st.tuples(partition_strategy(n), partition_strategy(n))
        )
    )
    def test_refines_matches_reference(self, pair):
        fine, coarse = pair
        assert fine.refines(coarse) == ref_refines(fine, coarse)
        assert coarse.refines(fine) == ref_refines(coarse, fine)

    @given(
        st.integers(min_value=1, max_value=7).flatmap(
            lambda n: st.tuples(partition_strategy(n), partition_strategy(n))
        )
    )
    def test_meet_matches_reference(self, pair):
        first, second = pair
        meet = first.meet(second)
        assert meet == ref_meet(first, second)
        # Definitional sanity: the meet is below both operands.
        assert meet <= first and meet <= second

    @given(machine_partition_strategy())
    def test_closure_matches_scalar_reference(self, pair):
        machine, partition = pair
        table = machine.transition_table
        n = machine.num_states
        seeds = []
        firsts = {}
        for element, label in enumerate(partition.labels.tolist()):
            if label in firsts:
                seeds.append((firsts[label], element))
            else:
                firsts[label] = element
        reference = Partition(_closure_labels_scalar(table, seeds, n))
        fast = Partition(closure_of_labels(table, partition.labels))
        assert fast == reference
        assert fast == closed_coarsening(machine, partition)
        assert is_closed_partition(machine, fast)


# ----------------------------------------------------------------------
# Fault graph caches
# ----------------------------------------------------------------------
class TestFaultGraphCaches:
    @given(graph_strategy())
    def test_dmin_matches_dense_reference(self, graph):
        assert graph.dmin() == ref_dmin(graph)

    @given(graph_strategy())
    def test_weakest_edges_match_dense_reference(self, graph):
        assert graph.weakest_edges() == ref_weakest_edges(graph)

    @given(graph_strategy(), st.data())
    def test_with_partition_matches_fresh_build(self, graph, data):
        extra = data.draw(partition_strategy(graph.num_states))
        incremental = graph.with_partition(extra)
        fresh = FaultGraph(graph.num_states, list(graph.partitions) + [extra])
        assert np.array_equal(incremental.condensed_weights, fresh.condensed_weights)
        assert incremental.dmin() == fresh.dmin() == graph.dmin_with(extra)

    @given(graph_strategy())
    def test_condensed_layout_matches_matrix(self, graph):
        rows, cols = condensed_indices(graph.num_states)
        assert np.array_equal(
            graph.condensed_weights, graph.weight_matrix[rows, cols]
        )


# ----------------------------------------------------------------------
# Descent pruning filter
# ----------------------------------------------------------------------
class TestDoomedPairsSoundness:
    @settings(max_examples=60)
    @given(dfsm_strategy(max_states=6, num_events=2), st.data())
    def test_doomed_pairs_never_prune_a_qualifying_candidate(self, machine, data):
        """Soundness: a pair marked doomed must really fail the weakest check."""
        n = machine.num_states
        if n < 2:
            return
        partition = Partition.identity(n)
        quotient = quotient_table(machine, partition)
        # Random "weakest edges" among distinct state pairs.
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = data.draw(
            st.lists(st.sampled_from(pairs), min_size=1, max_size=len(pairs))
        )
        weak_a = np.asarray([p[0] for p in chosen], dtype=np.int64)
        weak_b = np.asarray([p[1] for p in chosen], dtype=np.int64)
        doomed = _doomed_pairs(quotient, weak_a, weak_b, n)
        for a in range(n):
            for b in range(a + 1, n):
                seed = np.arange(n, dtype=np.int64)
                seed[b] = a
                closed = closure_of_labels(quotient, seed)
                separates = bool((closed[weak_a] != closed[weak_b]).all())
                if doomed[a, b]:
                    assert not separates, (
                        "pair (%d, %d) was pruned but separates all weakest edges" % (a, b)
                    )

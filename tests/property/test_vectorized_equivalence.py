"""Property tests: the vectorised fast paths agree with reference code.

The performance core (vectorised SP closure, ``refines``/``meet``,
condensed fault-graph ``dmin``/``weakest_edges``, the doomed-pair pruning
filter) re-implements operations that have short, obviously-correct
formulations.  These tests pit each fast path against such a reference on
random machines and partitions, so any future optimisation that drifts
semantically fails here first.

The sparse engine extends the same harness naturally: the dense
condensed engine — itself validated against the references above — is
the reference for the sparse ledger graph, the sparse pruning fixpoint,
the vectorised product exploration and the sparse lattice descent
(``TestSparseEngineEquivalence``), on the full random-machine corpus.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.fault_graph as fault_graph_module
import repro.core.fusion as fusion_module
from repro import CrossProduct, FaultGraph, Partition, generate_fusion
from repro.core.fault_graph import condensed_indices, separation_matrix
from repro.core.fusion import _doomed_pairs
from repro.core.partition import (
    _closure_labels_scalar,
    closed_coarsening,
    closure_of_labels,
    is_closed_partition,
    quotient_table,
)
from repro.core.sparse import (
    PairLedger,
    coblock_pair_arrays,
    doomed_pair_keys,
    iter_pair_chunks,
    low_weight_pairs,
)

from .strategies import dfsm_strategy, machine_set_strategy, partition_strategy


# ----------------------------------------------------------------------
# Reference implementations (straightforward, unvectorised)
# ----------------------------------------------------------------------
def ref_refines(fine: Partition, coarse: Partition) -> bool:
    seen = {}
    for mine, theirs in zip(fine.labels.tolist(), coarse.labels.tolist()):
        if mine in seen and seen[mine] != theirs:
            return False
        seen[mine] = theirs
    return True


def ref_meet(first: Partition, second: Partition) -> Partition:
    parent = list(range(first.num_elements))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for partition in (first, second):
        firsts = {}
        for element, label in enumerate(partition.labels.tolist()):
            if label in firsts:
                parent[find(element)] = find(firsts[label])
            else:
                firsts[label] = element
    return Partition([find(i) for i in range(first.num_elements)])


def ref_dmin(graph: FaultGraph) -> int:
    if graph.num_states == 1:
        return graph.num_machines
    weights = np.zeros((graph.num_states, graph.num_states), dtype=np.int64)
    for partition in graph.partitions:
        weights += separation_matrix(partition)
    return int(weights[~np.eye(graph.num_states, dtype=bool)].min())


def ref_weakest_edges(graph: FaultGraph):
    if graph.num_states == 1:
        return []
    d = ref_dmin(graph)
    dense = graph.weight_matrix
    out = []
    for i in range(graph.num_states):
        for j in range(i + 1, graph.num_states):
            if dense[i, j] == d:
                out.append((i, j))
    return out


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def machine_and_partition(draw, max_states=6, num_events=2):
    machine = draw(dfsm_strategy(max_states=max_states, num_events=num_events))
    partition = draw(partition_strategy(machine.num_states))
    return machine, partition


@st.composite
def machine_partition_strategy(draw):
    return machine_and_partition(draw)


@st.composite
def graph_strategy(draw, max_states=5, max_machines=3):
    n = draw(st.integers(min_value=1, max_value=max_states))
    count = draw(st.integers(min_value=1, max_value=max_machines))
    partitions = [draw(partition_strategy(n)) for _ in range(count)]
    return FaultGraph(n, partitions)


# ----------------------------------------------------------------------
# Partition lattice operations
# ----------------------------------------------------------------------
class TestPartitionOperations:
    @given(
        st.integers(min_value=1, max_value=7).flatmap(
            lambda n: st.tuples(partition_strategy(n), partition_strategy(n))
        )
    )
    def test_refines_matches_reference(self, pair):
        fine, coarse = pair
        assert fine.refines(coarse) == ref_refines(fine, coarse)
        assert coarse.refines(fine) == ref_refines(coarse, fine)

    @given(
        st.integers(min_value=1, max_value=7).flatmap(
            lambda n: st.tuples(partition_strategy(n), partition_strategy(n))
        )
    )
    def test_meet_matches_reference(self, pair):
        first, second = pair
        meet = first.meet(second)
        assert meet == ref_meet(first, second)
        # Definitional sanity: the meet is below both operands.
        assert meet <= first and meet <= second

    @given(machine_partition_strategy())
    def test_closure_matches_scalar_reference(self, pair):
        machine, partition = pair
        table = machine.transition_table
        n = machine.num_states
        seeds = []
        firsts = {}
        for element, label in enumerate(partition.labels.tolist()):
            if label in firsts:
                seeds.append((firsts[label], element))
            else:
                firsts[label] = element
        reference = Partition(_closure_labels_scalar(table, seeds, n))
        fast = Partition(closure_of_labels(table, partition.labels))
        assert fast == reference
        assert fast == closed_coarsening(machine, partition)
        assert is_closed_partition(machine, fast)


# ----------------------------------------------------------------------
# Fault graph caches
# ----------------------------------------------------------------------
class TestFaultGraphCaches:
    @given(graph_strategy())
    def test_dmin_matches_dense_reference(self, graph):
        assert graph.dmin() == ref_dmin(graph)

    @given(graph_strategy())
    def test_weakest_edges_match_dense_reference(self, graph):
        assert graph.weakest_edges() == ref_weakest_edges(graph)

    @given(graph_strategy(), st.data())
    def test_with_partition_matches_fresh_build(self, graph, data):
        extra = data.draw(partition_strategy(graph.num_states))
        incremental = graph.with_partition(extra)
        fresh = FaultGraph(graph.num_states, list(graph.partitions) + [extra])
        assert np.array_equal(incremental.condensed_weights, fresh.condensed_weights)
        assert incremental.dmin() == fresh.dmin() == graph.dmin_with(extra)

    @given(graph_strategy())
    def test_condensed_layout_matches_matrix(self, graph):
        rows, cols = condensed_indices(graph.num_states)
        assert np.array_equal(
            graph.condensed_weights, graph.weight_matrix[rows, cols]
        )


# ----------------------------------------------------------------------
# Descent pruning filter
# ----------------------------------------------------------------------
class TestDoomedPairsSoundness:
    @settings(max_examples=60)
    @given(dfsm_strategy(max_states=6, num_events=2), st.data())
    def test_doomed_pairs_never_prune_a_qualifying_candidate(self, machine, data):
        """Soundness: a pair marked doomed must really fail the weakest check."""
        n = machine.num_states
        if n < 2:
            return
        partition = Partition.identity(n)
        quotient = quotient_table(machine, partition)
        # Random "weakest edges" among distinct state pairs.
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = data.draw(
            st.lists(st.sampled_from(pairs), min_size=1, max_size=len(pairs))
        )
        weak_a = np.asarray([p[0] for p in chosen], dtype=np.int64)
        weak_b = np.asarray([p[1] for p in chosen], dtype=np.int64)
        doomed, _stats = _doomed_pairs(quotient, weak_a, weak_b, n)
        for a in range(n):
            for b in range(a + 1, n):
                seed = np.arange(n, dtype=np.int64)
                seed[b] = a
                closed = closure_of_labels(quotient, seed)
                separates = bool((closed[weak_a] != closed[weak_b]).all())
                if doomed[a, b]:
                    assert not separates, (
                        "pair (%d, %d) was pruned but separates all weakest edges" % (a, b)
                    )


# ----------------------------------------------------------------------
# Sparse engine vs the dense engine
# ----------------------------------------------------------------------
class TestSparsePrimitives:
    @given(
        st.integers(min_value=1, max_value=9).flatmap(
            lambda n: partition_strategy(n)
        )
    )
    def test_coblock_pairs_match_brute_force(self, partition):
        labels = partition.labels
        rows, cols = coblock_pair_arrays(labels)
        expected = [
            (i, j)
            for i in range(labels.size)
            for j in range(i + 1, labels.size)
            if labels[i] == labels[j]
        ]
        assert list(zip(rows.tolist(), cols.tolist())) == expected

    @given(st.integers(min_value=0, max_value=40), st.integers(min_value=1, max_value=7))
    def test_pair_chunks_cover_condensed_order(self, n, chunk):
        chunks = list(iter_pair_chunks(n, chunk_size=chunk))
        rows = np.concatenate([r for r, _ in chunks]) if chunks else np.empty(0, int)
        cols = np.concatenate([c for _, c in chunks]) if chunks else np.empty(0, int)
        if n >= 2:
            ref_rows, ref_cols = condensed_indices(n)
            assert np.array_equal(rows, ref_rows)
            assert np.array_equal(cols, ref_cols)
        else:
            assert rows.size == 0

    @given(
        st.integers(min_value=2, max_value=8).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(partition_strategy(n), min_size=1, max_size=5),
                st.integers(min_value=1, max_value=5),
            )
        )
    )
    def test_low_weight_pairs_match_brute_force(self, payload):
        n, partitions, cap = payload
        cap = min(cap, len(partitions))
        rows, cols, weights = low_weight_pairs(partitions, n, cap)
        got = {
            (i, j): w
            for i, j, w in zip(rows.tolist(), cols.tolist(), weights.tolist())
        }
        expected = {}
        for i in range(n):
            for j in range(i + 1, n):
                w = sum(1 for p in partitions if p.labels[i] != p.labels[j])
                if w < cap:
                    expected[(i, j)] = w
        assert got == expected

    @given(
        st.integers(min_value=2, max_value=8).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(partition_strategy(n), min_size=1, max_size=4),
                partition_strategy(n),
            )
        )
    )
    def test_ledger_fold_matches_rebuild(self, payload):
        n, partitions, extra = payload
        ledger = PairLedger.from_partitions(partitions, n, cap=len(partitions))
        folded = ledger.fold(extra.labels)
        rebuilt = PairLedger.from_partitions(
            partitions + [extra], n, cap=ledger.cap
        )
        assert folded.cap == rebuilt.cap
        assert np.array_equal(folded.rows, rebuilt.rows)
        assert np.array_equal(folded.cols, rebuilt.cols)
        assert np.array_equal(folded.weights, rebuilt.weights)
        assert folded.min_weight() == rebuilt.min_weight()

    @settings(max_examples=60)
    @given(dfsm_strategy(max_states=6, num_events=2), st.data())
    def test_sparse_doomed_keys_equal_dense_fixpoint(self, machine, data):
        """The sparse backward fixpoint finds the same doomed set."""
        n = machine.num_states
        if n < 2:
            return
        quotient = quotient_table(machine, Partition.identity(n))
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = data.draw(
            st.lists(st.sampled_from(pairs), min_size=1, max_size=len(pairs))
        )
        weak_a = np.asarray([p[0] for p in chosen], dtype=np.int64)
        weak_b = np.asarray([p[1] for p in chosen], dtype=np.int64)
        dense, _stats = _doomed_pairs(quotient, weak_a, weak_b, n)
        dense_keys = sorted(
            i * n + j for i in range(n) for j in range(i + 1, n) if dense[i, j]
        )
        sparse_keys = doomed_pair_keys(quotient, weak_a, weak_b, n)
        assert sparse_keys.tolist() == dense_keys


class TestSparseGraphEquivalence:
    @given(graph_strategy(max_states=6, max_machines=4), st.data())
    def test_sparse_graph_matches_dense(self, dense, data):
        sparse = FaultGraph(
            dense.num_states,
            dense.partitions,
            mode="sparse",
            weight_cap=data.draw(st.integers(min_value=1, max_value=4)),
        )
        assert sparse.dmin() == dense.dmin()
        assert sparse.weakest_edges() == dense.weakest_edges()
        for threshold in range(0, dense.num_machines + 2):
            assert sparse.edges_below(threshold) == dense.edges_below(threshold)
        for i in range(dense.num_states):
            for j in range(dense.num_states):
                assert sparse.distance(i, j) == dense.distance(i, j)
        extra = data.draw(partition_strategy(dense.num_states))
        assert sparse.dmin_with(extra) == dense.dmin_with(extra)
        sparse_child = sparse.with_partition(extra)
        dense_child = dense.with_partition(extra)
        assert sparse_child.is_sparse
        assert sparse_child.dmin() == dense_child.dmin()
        assert sparse_child.weakest_edges() == dense_child.weakest_edges()
        # Small sparse graphs may materialise the dense export on demand.
        assert np.array_equal(sparse.condensed_weights, dense.condensed_weights)


class TestSparseEngineEquivalence:
    """End-to-end: sparse descent + ledger graph == dense engine."""

    @settings(max_examples=40, deadline=None)
    @given(machine_set_strategy(max_machines=3, max_states=3), st.integers(0, 2))
    def test_generate_fusion_sparse_equals_dense(self, machines, f):
        dense_result = generate_fusion(machines, f=f)
        saved = (
            fault_graph_module.SPARSE_STATE_CUTOFF,
            fusion_module.DESCENT_SPARSE_CUTOFF,
        )
        fault_graph_module.SPARSE_STATE_CUTOFF = 1
        fusion_module.DESCENT_SPARSE_CUTOFF = 1
        try:
            sparse_result = generate_fusion(machines, f=f)
        finally:
            (
                fault_graph_module.SPARSE_STATE_CUTOFF,
                fusion_module.DESCENT_SPARSE_CUTOFF,
            ) = saved
        assert sparse_result.graph.is_sparse or sparse_result.top_size == 1
        assert sparse_result.summary() == dense_result.summary()
        assert [tuple(p.labels) for p in sparse_result.partitions] == [
            tuple(p.labels) for p in dense_result.partitions
        ]
        for ours, theirs in zip(sparse_result.backups, dense_result.backups):
            assert np.array_equal(ours.transition_table, theirs.transition_table)

    @settings(max_examples=30, deadline=None)
    @given(machine_set_strategy(max_machines=3, max_states=3))
    def test_product_vectorized_equals_scalar(self, machines):
        vectorized = CrossProduct(machines)

        class ScalarOnly(CrossProduct):
            def _explore(self, initial, event_columns, num_events, pool=None):
                return self._explore_scalar(initial, event_columns, num_events)

        scalar = ScalarOnly(machines)
        assert vectorized.state_tuples() == scalar.state_tuples()
        assert np.array_equal(
            vectorized.machine.transition_table, scalar.machine.transition_table
        )
        assert np.array_equal(vectorized.projections(), scalar.projections())

"""Unit tests for state-space accounting, sweeps, reporting and the table configs."""

from __future__ import annotations

import pytest

from repro import generate_fusion
from repro.analysis import (
    ComparisonRow,
    backup_count_comparison,
    compare_fusion_to_replication,
    format_comparison_table,
    format_markdown_table,
    format_row,
    format_sweep_series,
    original_state_space,
    reproduce_table1,
    sweep_fault_counts,
    sweep_machine_counts,
    table1_configuration,
    table1_rows,
    time_fusion_generation,
)
from repro.machines import fig2_machines, mod_counter


class TestComparisonRow:
    def test_fig2_row_values(self, fig2_machines_pair):
        row = compare_fusion_to_replication(fig2_machines_pair, 2)
        assert row.f == 2
        assert row.top_size == 4
        assert row.replication_space == 81  # (3 * 3) ** 2
        assert row.fusion_backups == 2
        assert row.replication_backups == 4
        assert row.fusion_space <= row.replication_space
        assert row.fusion_wins
        assert row.savings_factor == pytest.approx(row.replication_space / row.fusion_space)

    def test_precomputed_fusion_reused(self, fig2_machines_pair, fig2_fusion_result):
        row = compare_fusion_to_replication(fig2_machines_pair, 2, fusion=fig2_fusion_result)
        assert row.backup_sizes == fig2_fusion_result.backup_sizes

    def test_as_dict_roundtrip(self, fig2_machines_pair):
        row = compare_fusion_to_replication(fig2_machines_pair, 1)
        data = row.as_dict()
        assert data["f"] == 1
        assert data["machines"] == ["A", "B"]
        assert data["fusion_space"] == row.fusion_space

    def test_original_state_space(self, fig2_machines_pair):
        assert original_state_space(fig2_machines_pair) == 9


class TestSweeps:
    def test_fault_sweep_monotone_backups(self, fig2_machines_pair):
        points = sweep_fault_counts(fig2_machines_pair, [0, 1, 2])
        backups = [p.row.fusion_backups for p in points]
        assert backups == sorted(backups)
        assert [p.parameter for p in points] == [0, 1, 2]

    def test_machine_count_sweep(self):
        def factory(n):
            return [
                mod_counter(3, count_event=i % 3, events=(0, 1, 2), name="s%d" % i)
                for i in range(n)
            ]

        points = sweep_machine_counts(factory, [2, 4, 6], f=1)
        # Fusion needs at most one backup regardless of n (and none once the
        # set contains duplicate counters, which are already redundant),
        # while replication grows linearly with n.
        assert all(p.row.fusion_backups <= 1 for p in points)
        assert [p.row.replication_backups for p in points] == [2, 4, 6]

    def test_backup_count_comparison(self):
        counts = backup_count_comparison(1000, 5, dmin=1)
        assert counts["replication_backups"] == 5000
        assert counts["fusion_backups"] == 5
        byz = backup_count_comparison(10, 2, dmin=1, byzantine=True)
        assert byz["replication_backups"] == 40
        assert byz["fusion_backups"] == 4

    def test_timing_helper(self, fig2_machines_pair):
        result, timing = time_fusion_generation(fig2_machines_pair, 1)
        assert timing.seconds >= 0
        assert timing.top_size == 4
        assert timing.num_backups == result.num_backups


class TestReporting:
    def test_format_row_cells(self, fig2_machines_pair):
        row = compare_fusion_to_replication(fig2_machines_pair, 2)
        cells = format_row(row)
        assert cells[0] == "A, B"
        assert cells[1] == "2"
        assert cells[4] == "81"

    def test_text_table_contains_headers_and_rows(self, fig2_machines_pair):
        rows = [compare_fusion_to_replication(fig2_machines_pair, f) for f in (1, 2)]
        table = format_comparison_table(rows, title="demo")
        assert "demo" in table
        assert "|Replication|" in table
        assert table.count("A, B") == 2

    def test_markdown_table(self, fig2_machines_pair):
        row = compare_fusion_to_replication(fig2_machines_pair, 1)
        markdown = format_markdown_table([row])
        assert markdown.startswith("| Original Machines")
        assert markdown.count("|---") == 1 or "---" in markdown

    def test_sweep_series(self, fig2_machines_pair):
        rows = [compare_fusion_to_replication(fig2_machines_pair, f) for f in (1, 2)]
        series = format_sweep_series("f", [1, 2], rows)
        assert "f" in series.splitlines()[0]
        assert len(series.splitlines()) == 3


class TestTableConfigs:
    def test_five_rows_defined(self):
        rows = table1_rows()
        assert [config.row_id for config in rows] == [1, 2, 3, 4, 5]

    def test_machine_sizes_match_paper_replication_column(self):
        # (Π |Mi|)^f must reproduce the paper's |Replication| exactly.
        for config in table1_rows():
            product = 1
            for machine in config.machines:
                product *= machine.num_states
            assert product**config.f == config.paper.replication_space, config.description

    def test_row_lookup_validation(self):
        with pytest.raises(ValueError):
            table1_configuration(6)

    def test_row3_runs_quickly_and_beats_replication(self):
        config = table1_configuration(3)
        row = config.run()
        assert row.fusion_space < row.replication_space
        assert row.fusion_backups == config.f  # dmin(A) = 1 for this row

    def test_reproduce_subset(self):
        results = reproduce_table1(rows=[3])
        assert len(results) == 1
        config, row = results[0]
        assert config.row_id == 3
        assert isinstance(row, ComparisonRow)

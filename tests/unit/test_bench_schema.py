"""Schema check for the committed ``BENCH_perf.json`` trajectory.

The perf harness (``benchmarks/bench_perf_regression.py``) validates the
payload it *writes*; this test validates the file actually committed at
the repository root, so a stale or hand-edited trajectory fails tier-1
CI.  The load-bearing part is the ``prune_stats`` block: every case must
carry the doomed-pair fixpoint's structural outcome (rounds, budget
spend, cross-level seeding and — above all — the truncation count), so
silent under-pruning can never hide in the timing noise.
"""

from __future__ import annotations

import json
import os

PRUNE_STATS_FIELDS = (
    "calls", "rounds", "forward_rounds", "spent", "truncated", "seeded",
)

RESILIENCE_STATS_FIELDS = (
    "crashes", "timeouts", "rebuilds", "republished", "retries", "degraded", "chaos",
)

_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BENCH_PATH = os.path.join(_ROOT, "BENCH_perf.json")


def _payload():
    with open(BENCH_PATH) as handle:
        return json.load(handle)


def test_bench_schema_version():
    assert _payload()["schema"] == "repro-bench-perf/8"


def test_resources_block_records_governor_degradation_evidence():
    """Schema v8: the resource governor's evidence travels with the file.

    The committed trajectory must carry the low-budget smoke's proof
    (``benchmarks/bench_resource_smoke.py``): the flagship rerun under a
    tiny memory budget plus a seeded ``shm_full`` fault, in which the
    merge tree actually spilled to external sorted runs, a ``/dev/shm``
    publish actually fell back to a file-backed segment, and the run
    still finished byte-identical to the unbounded reference with
    identical ``prune_stats`` and zero stranded segments.
    """
    resources = _payload().get("resources")
    assert resources is not None, "BENCH_perf.json is missing the resources block"
    assert resources["case"] == "counters-9 (top=19683)"
    assert resources["budget"].get("memory"), "no memory budget was applied"
    assert "shm_full" in resources["chaos"]
    assert resources["workers"] >= 2
    assert resources["byte_identical"] is True
    assert resources["prune_stats_equal"] is True
    assert resources["run_seconds"] > 0
    stats = resources["stats"]
    assert stats["spills"] >= 1, "the budget never forced a spill"
    assert stats["spilled_bytes"] > 0
    assert stats["shm_fallbacks"] >= 1, "no file-backed fallback happened"
    assert stats["chaos"] >= 1, "the seeded shm_full fault never fired"
    assert stats["mem_peak"] > 0
    for field, value in stats.items():
        assert isinstance(value, int) and value >= 0, field
    assert resources["shm_stranded"] == 0


def test_network_block_records_fabric_resilience_evidence():
    """Schema v7: the adversarial fabric's evidence travels with the file.

    The committed trajectory must carry the network smoke's proof
    (``benchmarks/bench_network_chaos_smoke.py``): a seeded
    drop/reorder/partition schedule that actually fired (``dropped >
    0``), defeated byte-identically to the fabric-free reference on
    both execution engines, an f-sweep covering ``f = 1..3`` in which
    every supervised chaos run stayed healthy, and zero stranded
    ``/dev/shm`` segments.
    """
    network = _payload().get("network")
    assert network is not None, "BENCH_perf.json is missing the network block"
    assert network["case"] == "zoo-f2 (tcp+mesi+parity+counter)"
    assert "drop=" in network["chaos"] and "partition=" in network["chaos"]
    assert network["fault_free_equivalent"] is True
    assert set(network["engines"]) == {"vectorized", "python"}
    delivery = network["delivery"]
    assert delivery["delivered"] > 0
    assert delivery["dropped"] > 0, "the chaos schedule never fired"
    for outcome, count in delivery.items():
        assert isinstance(count, int) and count >= 0, outcome
    assert network["shm_stranded"] == 0
    sweep = {entry["f"]: entry for entry in network["f_sweep"]}
    assert sorted(sweep) == [1, 2, 3]
    for f, entry in sweep.items():
        assert entry["status"] == "healthy", f
        assert entry["fusion_seconds"] > 0, f
        assert entry["delivered"] > 0, f
        assert entry["backups"] >= 1, f
        assert entry["fleet"] > entry["backups"], f
    # Redundancy grows with f: each extra tolerated fault adds backups.
    assert sweep[1]["backups"] <= sweep[2]["backups"] <= sweep[3]["backups"]


def test_store_block_records_crash_recovery_evidence():
    """Schema v6: the artifact store's durability proof travels with the file.

    The committed trajectory must carry the crash smoke's evidence
    (``benchmarks/bench_store_smoke.py``): a seeded SIGKILL between
    descent levels, a chaos-free resume that reclaimed the dead owner's
    lock and replayed at least one committed checkpoint byte-identically,
    and a warm-cache hit that recomputed nothing — no ``product_build``,
    ``ledger_build`` or ``descent`` stage, zero commits — faster than
    the resumed computation it short-circuits.
    """
    store = _payload().get("store")
    assert store is not None, "BENCH_perf.json is missing the store block"
    assert store["case"] == "counters-9 (top=19683)"
    assert "kill_between_levels" in store["chaos"]
    assert store["byte_identical"] is True
    resume = store["resume_stats"]
    assert resume["resumed_levels"] >= 1, "the resume replayed no checkpoint"
    assert resume["stale_locks"] >= 1, "the dead owner's lock was never reclaimed"
    assert resume["checkpoints"] >= 1
    assert store["warm_hit_seconds"] > 0
    assert store["warm_hit_seconds"] < store["resume_seconds"]
    warm = store["store_stats"]
    assert warm["commits"] == 0, "a warm hit must write nothing"
    assert warm["hits"] >= 1 and warm["quarantined"] == 0
    assert not {"product_build", "ledger_build", "descent"} & set(
        store["warm_stages"]
    )
    for stats in (resume, warm):
        for field, value in stats.items():
            assert isinstance(value, int), field


def test_runtime_block_records_fleet_scale_throughput():
    """Schema v5: the streaming engine's trajectory travels with the file.

    The committed trajectory must include a fleet of at least 10^5
    instances with a plausible events/sec figure and *fault-injected*
    recovery latency — both the crash and the Byzantine plan, each
    verified to have round-tripped (recovery restored ground truth)
    before the latency was recorded.
    """
    runtime = _payload().get("runtime")
    assert runtime is not None, "BENCH_perf.json is missing the runtime block"
    cases = runtime["cases"]
    assert cases, "runtime block has no cases"
    assert max(record["num_instances"] for record in cases.values()) >= 100_000
    for name, record in cases.items():
        assert record["events_per_sec"] > 0, name
        assert record["broadcast_events_per_sec"] > 0, name
        recovery = record["recovery"]
        assert recovery["faulty_instances"] >= 1, name
        for kind in ("crash", "byzantine"):
            entry = recovery[kind]
            assert entry["seconds"] > 0, (name, kind)
            assert entry["consistent_after"] is True, (name, kind)
            assert entry["faults"], (name, kind)


def test_every_stage_carries_consistent_exclusive_seconds():
    """Schema v3: stages report exclusive (nesting-corrected) seconds.

    ``prune`` and ``closure`` run *inside* ``descent``, so inclusive
    per-stage seconds overlap by design; the exclusive figures must be
    bounded by the inclusive ones and account for the descent exactly —
    that is what makes per-stage attribution in the trajectory additive.
    """
    for name, record in _payload()["cases"].items():
        stages = record["stages"]
        for stage, entry in stages.items():
            assert "exclusive_seconds" in entry, (name, stage)
            assert -1e-6 <= entry["exclusive_seconds"] <= entry["seconds"] + 1e-6, (
                name,
                stage,
            )
        if "descent" in stages:
            nested = sum(
                stages[child]["seconds"]
                for child in ("prune", "closure")
                if child in stages
            )
            descent = stages["descent"]
            assert (
                abs(descent["seconds"] - descent["exclusive_seconds"] - nested)
                <= 1e-3
            ), name


def test_every_case_carries_prune_stats():
    cases = _payload()["cases"]
    assert cases, "BENCH_perf.json has no cases"
    for name, record in cases.items():
        stats = record.get("prune_stats")
        assert stats is not None, "%s is missing prune_stats" % name
        assert sorted(stats) == sorted(PRUNE_STATS_FIELDS), name
        for field in PRUNE_STATS_FIELDS:
            assert isinstance(stats[field], int), (name, field)
        # Structural sanity: a case that pruned spent work doing so, and
        # cases that never pruned report all-zero stats.
        if stats["calls"] == 0:
            assert stats["rounds"] == 0 and stats["spent"] == 0
        else:
            assert stats["spent"] > 0


def test_every_case_carries_resilience_stats():
    """Schema v4: the self-healing layer's counters travel with the case.

    A committed trajectory must come from a healthy run: no crashes, no
    watchdog timeouts, no degradations and no chaos injection — the
    block's purpose is to make any such activity impossible to miss.
    """
    cases = _payload()["cases"]
    for name, record in cases.items():
        stats = record.get("resilience_stats")
        assert stats is not None, "%s is missing resilience_stats" % name
        assert sorted(stats) == sorted(RESILIENCE_STATS_FIELDS), name
        for field in RESILIENCE_STATS_FIELDS:
            assert isinstance(stats[field], int), (name, field)
            assert stats[field] == 0, (
                "%s recorded resilience activity (%s=%d); committed "
                "trajectories must come from fault-free runs"
                % (name, field, stats[field])
            )


def test_flagship_mix_case_is_recorded_untruncated():
    """The PR-4 flagship must be present, inside the guard, not truncated."""
    record = _payload()["cases"]["mesi+counters-9 (top=78732)"]
    assert record["summary"]["top_size"] == 78732
    assert record["seconds"] < 60.0
    assert record["engine"] == "sparse"
    assert record["prune_stats"]["truncated"] == 0
    assert record["prune_stats"]["seeded"] > 0


def test_narrow_key_flagship_is_recorded_with_first_figure_pinned():
    """The PR-5 flagship: present, inside the guard, introduction pinned.

    Its top level deliberately truncates the pruning fixpoint (the
    budgeted stop is ~65 s cheaper than convergence and costs ~1.5 s of
    extra closure checks); the stats must *report* that — at most the
    one budgeted stop — rather than hide it.
    """
    record = _payload()["cases"]["mesi+counters-10 (top=236196)"]
    assert record["summary"]["top_size"] == 236196
    assert record["seconds"] < 60.0
    assert record["engine"] == "sparse"
    assert record["first_recorded_seconds"] is not None
    assert record["prune_stats"]["truncated"] <= 1
    assert record["prune_stats"]["seeded"] > 0

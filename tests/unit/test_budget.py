"""Unit tests for the resource-exhaustion governor (:mod:`repro.core.budget`).

Covers the typed size/spec parsing (every ``REPRO_*`` knob must raise a
:class:`SpecParseError` naming the offending token, never a bare
``ValueError``), the external-merge spill machinery's byte-identity,
the governor's watermark decisions, the ``/dev/shm`` publish pre-check
and file-backed fallback, and the store's ENOSPC retry-then-typed-raise
plan with the run left resumable.
"""

from __future__ import annotations

import errno
import os

import numpy as np
import pytest

from repro.core.budget import (
    DISK_BUDGET_ENV,
    MEMORY_BUDGET_ENV,
    SHM_BUDGET_ENV,
    BudgetStats,
    ResourceBudget,
    ResourceGovernor,
    activate,
    current_governor,
    external_sort_unique,
    parse_byte_size,
)
from repro.core.exceptions import (
    FusionError,
    NetworkSpecParseError,
    ResourceExhaustedError,
    SimulationError,
    SpecParseError,
)
from repro.core.resilience import ChaosSpec, EngineFaultKind
from repro.core.shm import SharedArrayBundle
from repro.utils.rng import as_generator


class TestParseByteSize:
    def test_plain_and_suffixed_sizes(self):
        assert parse_byte_size("1048576", "X") == 1 << 20
        assert parse_byte_size("64k", "X") == 64 << 10
        assert parse_byte_size("64K", "X") == 64 << 10
        assert parse_byte_size("2MiB", "X") == 2 << 20
        assert parse_byte_size("1.5g", "X") == int(1.5 * (1 << 30))
        assert parse_byte_size(" 3 GB ", "X") == 3 << 30
        assert parse_byte_size("1T", "X") == 1 << 40

    @pytest.mark.parametrize("bad", ["64q", "12 furlongs", "M", "-5k", "0", "0.0M", ""])
    def test_malformed_sizes_raise_typed_with_token(self, bad):
        with pytest.raises(SpecParseError) as excinfo:
            parse_byte_size(bad, "REPRO_MEMORY_BUDGET")
        err = excinfo.value
        assert isinstance(err, FusionError)
        assert err.knob == "REPRO_MEMORY_BUDGET"
        assert err.token == bad
        assert "REPRO_MEMORY_BUDGET" in str(err)
        assert repr(bad) in str(err)


class TestResourceBudget:
    @pytest.mark.parametrize(
        "knob,attr",
        [
            (MEMORY_BUDGET_ENV, "memory"),
            (SHM_BUDGET_ENV, "shm"),
            (DISK_BUDGET_ENV, "disk"),
        ],
    )
    def test_each_env_knob_parses(self, knob, attr, monkeypatch):
        monkeypatch.setenv(knob, "8M")
        budget = ResourceBudget.from_env()
        assert getattr(budget, attr) == 8 << 20
        assert budget.bounded

    @pytest.mark.parametrize(
        "knob", [MEMORY_BUDGET_ENV, SHM_BUDGET_ENV, DISK_BUDGET_ENV]
    )
    def test_each_env_knob_rejects_garbage_with_token(self, knob, monkeypatch):
        monkeypatch.setenv(knob, "sixty-four megs")
        with pytest.raises(SpecParseError) as excinfo:
            ResourceBudget.from_env()
        assert excinfo.value.knob == knob
        assert excinfo.value.token == "sixty-four megs"

    def test_unset_env_is_unbounded(self, monkeypatch):
        for knob in (MEMORY_BUDGET_ENV, SHM_BUDGET_ENV, DISK_BUDGET_ENV):
            monkeypatch.delenv(knob, raising=False)
        budget = ResourceBudget.from_env()
        assert budget == ResourceBudget()
        assert not budget.bounded

    def test_mapping_accepts_ints_and_strings(self):
        budget = ResourceBudget.from_mapping({"memory": "1M", "disk": 4096})
        assert budget.memory == 1 << 20
        assert budget.shm is None
        assert budget.disk == 4096

    def test_mapping_rejects_unknown_keys_and_nonpositive(self):
        with pytest.raises(SpecParseError) as excinfo:
            ResourceBudget.from_mapping({"memroy": "1M"})
        assert excinfo.value.token == "memroy"
        with pytest.raises(SpecParseError):
            ResourceBudget.from_mapping({"memory": 0})

    def test_coerce(self):
        budget = ResourceBudget(memory=1)
        assert ResourceBudget.coerce(budget) is budget
        assert ResourceBudget.coerce({"shm": 7}).shm == 7


class TestSpecStringParseErrors:
    """Satellite: every chaos/budget env knob fails with a typed error."""

    def test_chaos_unknown_key_names_token(self):
        with pytest.raises(SpecParseError) as excinfo:
            ChaosSpec.parse("wroker_kill=0.5")
        assert excinfo.value.knob == "REPRO_CHAOS"
        assert excinfo.value.token == "wroker_kill"

    def test_chaos_bad_value_names_token(self):
        with pytest.raises(SpecParseError) as excinfo:
            ChaosSpec.parse("worker_kill=lots")
        assert excinfo.value.token == "lots"

    def test_chaos_missing_equals_names_chunk(self):
        with pytest.raises(SpecParseError) as excinfo:
            ChaosSpec.parse("worker_kill")
        assert excinfo.value.token == "worker_kill"

    def test_chaos_unknown_stage_names_token(self):
        with pytest.raises(SpecParseError) as excinfo:
            ChaosSpec.parse("worker_kill=1.0,stages=warp_core")
        assert excinfo.value.token == "warp_core"

    def test_net_chaos_errors_are_both_spec_and_simulation_errors(self):
        from repro.simulation.fabric import NetworkChaosSpec

        for spec, token in [
            ("drop", "drop"),
            ("warp=0.5", "warp"),
            ("drop=many", "many"),
        ]:
            with pytest.raises(NetworkSpecParseError) as excinfo:
                NetworkChaosSpec.parse(spec)
            err = excinfo.value
            assert isinstance(err, SpecParseError)
            assert isinstance(err, SimulationError)
            assert err.knob == "REPRO_NET_CHAOS"
            assert err.token == token


class TestExternalSortUnique:
    def test_empty_and_single_part(self, tmp_path):
        assert external_sort_unique([], str(tmp_path)).size == 0
        out = external_sort_unique([np.array([5, 1, 5], np.int64)], str(tmp_path))
        np.testing.assert_array_equal(out, [1, 5])

    @pytest.mark.parametrize("dtype", [np.int64, np.int32])
    @pytest.mark.parametrize("window", [2, 7, 64])
    def test_matches_in_memory_union(self, tmp_path, dtype, window):
        rng = as_generator(1234 + window)
        parts = [
            rng.integers(0, 500, size=int(rng.integers(0, 400))).astype(dtype)
            for _ in range(int(rng.integers(2, 6)))
        ]
        merged = external_sort_unique(parts, str(tmp_path), window=window)
        expected = np.unique(np.concatenate(parts))
        assert merged.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(merged, expected)
        assert merged.tobytes() == expected.astype(dtype).tobytes()

    def test_leaves_no_run_files_behind(self, tmp_path):
        parts = [np.arange(100, dtype=np.int64), np.arange(50, 150, dtype=np.int64)]
        external_sort_unique(parts, str(tmp_path), window=8)
        assert os.listdir(str(tmp_path)) == []


class TestGovernor:
    def test_inactive_outside_fusion(self):
        assert current_governor() is None
        governor = ResourceGovernor(budget={"memory": 100})
        with activate(governor):
            assert current_governor() is governor
            inner = ResourceGovernor(budget={"memory": 1})
            with activate(inner):
                assert current_governor() is inner
            assert current_governor() is governor
        assert current_governor() is None

    def test_should_spill_watermark(self):
        governor = ResourceGovernor(budget={"memory": 1000}, chaos=ChaosSpec({}))
        assert not governor.should_spill(1000)
        assert governor.should_spill(1001)
        assert governor.stats.mem_peak == 1001

    def test_unbounded_never_spills(self):
        governor = ResourceGovernor(budget={}, chaos=ChaosSpec({}))
        assert not governor.should_spill(1 << 40)

    def test_mem_pressure_chaos_forces_spill(self):
        chaos = ChaosSpec(
            {EngineFaultKind.MEM_PRESSURE: 1.0},
            stages=("budget_check",),
            max_faults=1,
            seed=9,
        )
        governor = ResourceGovernor(budget={}, chaos=chaos)
        assert governor.should_spill(10)
        assert governor.stats.chaos == 1
        assert not governor.should_spill(10)  # max_faults exhausted

    def test_spill_merge_counts_and_matches(self, tmp_path):
        governor = ResourceGovernor(budget={"memory": 1}, chaos=ChaosSpec({}))
        governor.set_spill_dir(str(tmp_path))
        parts = [np.array([9, 2, 4], np.int64), np.array([4, 8], np.int64)]
        merged = governor.spill_merge(parts)
        np.testing.assert_array_equal(merged, [2, 4, 8, 9])
        assert governor.stats.spills == 1
        assert governor.stats.spilled_bytes == sum(p.nbytes for p in parts)

    def test_shm_budget_watermark_forces_fallback(self):
        governor = ResourceGovernor(budget={"shm": 1000}, chaos=ChaosSpec({}))
        assert governor.publish_fallback_reason(500) is None
        governor.note_publish(800)
        reason = governor.publish_fallback_reason(500)
        assert reason is not None and "REPRO_SHM_BUDGET" in reason
        governor.note_release(800)
        assert governor.publish_fallback_reason(500) is None
        assert governor.stats.shm_peak == 800

    def test_shm_full_chaos_forces_fallback(self):
        chaos = ChaosSpec(
            {EngineFaultKind.SHM_FULL: 1.0},
            stages=("segment_publish",),
            max_faults=1,
            seed=4,
        )
        governor = ResourceGovernor(budget={}, chaos=chaos)
        assert governor.publish_fallback_reason(64) == "injected shm_full fault"
        assert governor.publish_fallback_reason(64) is None

    def test_close_removes_private_spill_dir(self):
        governor = ResourceGovernor(budget={})
        scratch = governor.spill_dir()
        assert os.path.isdir(scratch)
        governor.close()
        assert not os.path.exists(scratch)

    def test_stats_counters_are_ints(self):
        for value in BudgetStats().as_counters().values():
            assert isinstance(value, int)


class TestShmFallback:
    """Satellite + tentpole: publish pre-check and file-backed fallback."""

    def _arrays(self):
        return {
            "a": np.arange(100, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 33),
        }

    def test_publish_falls_back_to_file_segment(self):
        chaos = ChaosSpec(
            {EngineFaultKind.SHM_FULL: 1.0},
            stages=("segment_publish",),
            max_faults=1,
            seed=2,
        )
        governor = ResourceGovernor(budget={}, chaos=chaos)
        with activate(governor):
            bundle = SharedArrayBundle.create(self._arrays())
            try:
                meta = bundle.meta
                assert meta["backing"] == "file"
                attached = SharedArrayBundle.attach(meta)
                np.testing.assert_array_equal(
                    attached.arrays["a"], self._arrays()["a"]
                )
                np.testing.assert_array_equal(
                    attached.arrays["b"], self._arrays()["b"]
                )
                attached.close()
            finally:
                bundle.close()
            assert not os.path.exists(meta["segment"])
        assert governor.stats.shm_fallbacks == 1
        governor.close()

    def test_shm_backed_publish_is_metered(self):
        governor = ResourceGovernor(budget={}, chaos=ChaosSpec({}))
        with activate(governor):
            bundle = SharedArrayBundle.create(self._arrays())
            try:
                assert "backing" not in bundle.meta
                assert governor.resident_shm_bytes > 0
                assert governor.stats.shm_peak > 0
            finally:
                bundle.close()
            assert governor.resident_shm_bytes == 0

    def test_double_failure_raises_typed_with_segment_size(self, monkeypatch):
        chaos = ChaosSpec(
            {EngineFaultKind.SHM_FULL: 1.0},
            stages=("segment_publish",),
            max_faults=1,
            seed=2,
        )
        governor = ResourceGovernor(budget={}, chaos=chaos)
        import repro.core.shm as shm_mod

        def refuse(cls, size, directory):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(
            shm_mod._FileSegment, "create", classmethod(refuse)
        )
        with activate(governor):
            with pytest.raises(ResourceExhaustedError) as excinfo:
                SharedArrayBundle.create(self._arrays())
        err = excinfo.value
        assert err.resource == "shm"
        assert err.observed > 0
        assert "%d bytes" % err.observed in str(err)
        governor.close()


class TestStoreDiskRetry:
    """Tentpole: ENOSPC commits sweep, back off, retry, then raise typed."""

    def _machines(self):
        from repro.machines import mod_counter

        return [
            mod_counter(3, count_event=e, events=(0, 1, 2), name="c%d" % e)
            for e in range(3)
        ]

    def test_injected_disk_full_retries_and_succeeds(self, tmp_path):
        from repro.io.store import ArtifactStore

        chaos = ChaosSpec(
            {EngineFaultKind.DISK_FULL: 1.0},
            stages=("store_commit",),
            max_faults=1,
            seed=6,
        )
        store = ArtifactStore(str(tmp_path), chaos=chaos)
        digest = store.open_namespace(self._machines())
        store.commit(digest, "thing.npz", {"x": np.arange(5)}, {"kind": "test"})
        assert store.stats.disk_retries >= 1
        assert store.stats.quarantined == 0
        loaded = store.load(digest, "thing.npz")
        assert loaded is not None
        np.testing.assert_array_equal(loaded[0]["x"], np.arange(5))

    def test_budget_overrun_raises_typed_and_stays_resumable(self, tmp_path):
        from repro.io.store import ArtifactStore

        store = ArtifactStore(str(tmp_path), chaos=ChaosSpec({}))
        digest = store.open_namespace(self._machines())
        store.commit(digest, "small.npz", {"x": np.arange(4)}, {"kind": "test"})
        governor = ResourceGovernor(budget={"disk": 1}, chaos=ChaosSpec({}))
        with activate(governor):
            with pytest.raises(ResourceExhaustedError) as excinfo:
                store.commit(
                    digest, "big.npz", {"x": np.arange(100)}, {"kind": "test"}
                )
        err = excinfo.value
        assert err.resource == "disk"
        assert err.watermark == 1
        assert "resumable" in str(err)
        # Nothing quarantined, nothing torn: the earlier artifact still
        # verifies, the failed name simply does not exist, and with the
        # budget lifted the same commit goes through.
        assert store.stats.quarantined == 0
        assert store.load(digest, "small.npz") is not None
        assert store.load(digest, "big.npz") is None
        assert not [f for f in os.listdir(store.root) if ".tmp-" in f]
        store.commit(digest, "big.npz", {"x": np.arange(100)}, {"kind": "test"})
        assert store.load(digest, "big.npz") is not None

    def test_scratch_sweep_removes_only_dead_owner_files(self, tmp_path):
        from repro.io.store import ArtifactStore

        store = ArtifactStore(str(tmp_path), chaos=ChaosSpec({}))
        scratch = store.scratch_dir()
        own = os.path.join(scratch, "run-%d-0-0.bin" % os.getpid())
        dead = os.path.join(scratch, "run-999999999-0-0.bin")
        junk = os.path.join(scratch, "notarun.txt")
        for path in (own, dead, junk):
            with open(path, "wb") as handle:
                handle.write(b"x")
        removed = store.sweep_scratch()
        assert removed == 1
        assert os.path.exists(own)
        assert not os.path.exists(dead)
        assert os.path.exists(junk)
        assert store.stats.swept_scratch == 1


class TestFaultWiring:
    """The three resource kinds flow through FaultKind and the injector."""

    def test_fault_kind_mirrors_engine_kinds(self):
        from repro.simulation.faults import FaultKind

        for name in ("DISK_FULL", "SHM_FULL", "MEM_PRESSURE"):
            kind = FaultKind[name]
            assert kind.value == EngineFaultKind[name].value
            assert kind.targets_engine
            assert not kind.targets_network

    def test_injector_builds_resource_chaos_spec(self):
        from repro.simulation.faults import FaultInjector

        injector = FaultInjector(["s1", "s2"], seed=1)
        spec = injector.engine_chaos(
            seed=5, disk_full=1.0, shm_full=1.0, mem_pressure=1.0, max_faults=3
        )
        assert spec.active
        drawn = {
            spec.draw(stage)[0]
            for stage in ("store_commit", "segment_publish", "budget_check")
        }
        assert drawn == {"disk_full", "shm_full", "mem_pressure"}

    def test_resource_kinds_draw_only_at_their_owner_stage(self):
        spec = ChaosSpec(
            {EngineFaultKind.DISK_FULL: 1.0}, max_faults=10, seed=0
        )
        assert spec.draw("segment_publish") is None
        assert spec.draw("budget_check") is None
        fault = spec.draw("store_commit")
        assert fault is not None and fault[0] == "disk_full"

"""Unit tests for the erasure-coding analogy (Section 3)."""

from __future__ import annotations

import pytest

from repro import CrossProduct, FaultGraph, ReproError, generate_fusion
from repro.coding import (
    BlockCode,
    code_from_partitions,
    correctable_erasures,
    correctable_errors,
    distance_distribution,
    hamming_distance,
    machine_code,
    minimum_distance,
    repetition_code,
    single_parity_code,
)
from repro.core import Partition


class TestHammingPrimitives:
    def test_hamming_distance(self):
        assert hamming_distance("abc", "abd") == 1
        assert hamming_distance([1, 2, 3], [1, 2, 3]) == 0
        assert hamming_distance((0, 0), (1, 1)) == 2

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            hamming_distance("ab", "abc")

    def test_minimum_distance(self):
        assert minimum_distance([(0, 0, 0), (1, 1, 1)]) == 3
        assert minimum_distance([(0, 0), (0, 1), (1, 1)]) == 1
        assert minimum_distance([(0, 0)]) == 0

    def test_correction_bounds(self):
        assert correctable_erasures(3) == 2
        assert correctable_errors(3) == 1
        assert correctable_errors(4) == 1
        assert correctable_erasures(0) == 0

    def test_distance_distribution(self):
        histogram = distance_distribution([(0, 0), (0, 1), (1, 1)])
        assert histogram == {1: 2, 2: 1}


class TestBlockCode:
    def test_construction_validation(self):
        with pytest.raises(ReproError):
            BlockCode([])
        with pytest.raises(ReproError):
            BlockCode([(0, 1), (0, 1, 2)])
        with pytest.raises(ReproError):
            BlockCode([(0, 1), (0, 1)])

    def test_repetition_code_properties(self):
        code = repetition_code(symbol_count=3, copies=3)
        assert code.size == 3
        assert code.length == 3
        assert code.minimum_distance() == 3
        assert code.correctable_erasures() == 2
        assert code.correctable_errors() == 1

    def test_single_parity_code_distance_two(self):
        code = single_parity_code(bits=3)
        assert code.size == 8
        assert code.minimum_distance() == 2
        assert code.correctable_erasures() == 1
        assert code.correctable_errors() == 0

    def test_erasure_decoding(self):
        code = repetition_code(2, 3)
        assert code.decode_erasures((None, 1, None)) == (1, 1, 1)
        with pytest.raises(ReproError):
            code.decode_erasures((None, None, None))
        with pytest.raises(ReproError):
            code.decode_erasures((None, 1))

    def test_error_decoding(self):
        code = repetition_code(2, 3)
        assert code.decode_errors((1, 0, 1)) == (1, 1, 1)
        with pytest.raises(ReproError):
            single_parity_code(2).decode_errors((1, 1, 1))  # distance-2 cannot correct

    def test_vote_decoding_matches_erasure_decoding(self):
        code = repetition_code(3, 3)
        assert code.decode_by_votes((2, None, 2)) == (2, 2, 2)
        with pytest.raises(ReproError):
            code.decode_by_votes((None, None, None))


class TestMachineCodes:
    def test_code_dmin_equals_fault_graph_dmin(self, fig2_machines_pair, fig2_product):
        code = machine_code(fig2_machines_pair, product=fig2_product)
        graph = FaultGraph.from_cross_product(fig2_product)
        assert code.minimum_distance() == graph.dmin()
        assert code.size == fig2_product.num_states
        assert code.length == 2

    def test_code_with_fusion_backups(self, fig2_machines_pair, fig2_fusion_result):
        code = machine_code(
            fig2_machines_pair,
            backups=fig2_fusion_result.backups,
            product=fig2_fusion_result.product,
        )
        assert code.minimum_distance() == fig2_fusion_result.final_dmin
        assert code.correctable_erasures() == fig2_fusion_result.f
        assert code.correctable_errors() == fig2_fusion_result.byzantine_f

    def test_code_from_partitions(self):
        partitions = [Partition([0, 1, 0, 1]), Partition([0, 0, 1, 1])]
        code = code_from_partitions(partitions, 4)
        assert code.size == 4
        assert code.length == 2

    def test_fig1_code(self, fig1_counters):
        result = generate_fusion(fig1_counters, f=1)
        code = machine_code(fig1_counters, backups=result.backups, product=result.product)
        assert code.minimum_distance() >= 2
        assert code.correctable_erasures() >= 1

"""Unit tests for the DFSM model (Definition 1 and the execution semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DFSM, InvalidMachineError, UnknownEventError, UnknownStateError
from repro.machines import mesi, mod_counter


def simple_machine():
    return DFSM(
        states=["s0", "s1"],
        events=["a", "b"],
        transitions={
            "s0": {"a": "s1", "b": "s0"},
            "s1": {"a": "s0", "b": "s1"},
        },
        initial="s0",
        name="simple",
    )


class TestConstruction:
    def test_basic_properties(self):
        machine = simple_machine()
        assert machine.num_states == 2
        assert machine.num_events == 2
        assert machine.initial == "s0"
        assert machine.states == ("s0", "s1")
        assert machine.events == ("a", "b")
        assert len(machine) == 2

    def test_empty_state_set_rejected(self):
        with pytest.raises(InvalidMachineError):
            DFSM([], ["a"], {}, "s0")

    def test_duplicate_states_rejected(self):
        with pytest.raises(InvalidMachineError):
            DFSM(["s0", "s0"], ["a"], {"s0": {"a": "s0"}}, "s0")

    def test_duplicate_events_rejected(self):
        with pytest.raises(InvalidMachineError):
            DFSM(["s0"], ["a", "a"], {"s0": {"a": "s0"}}, "s0")

    def test_unknown_initial_rejected(self):
        with pytest.raises(InvalidMachineError):
            DFSM(["s0"], ["a"], {"s0": {"a": "s0"}}, "s9")

    def test_partial_transition_function_rejected(self):
        with pytest.raises(InvalidMachineError):
            DFSM(["s0", "s1"], ["a"], {"s0": {"a": "s1"}, "s1": {}}, "s0")

    def test_transition_to_unknown_state_rejected(self):
        with pytest.raises(InvalidMachineError):
            DFSM(["s0"], ["a"], {"s0": {"a": "nowhere"}}, "s0")

    def test_transition_on_unknown_event_rejected(self):
        with pytest.raises(InvalidMachineError):
            DFSM(["s0"], ["a"], {"s0": {"a": "s0", "zzz": "s0"}}, "s0")

    def test_missing_state_row_rejected(self):
        with pytest.raises(InvalidMachineError):
            DFSM(["s0", "s1"], ["a"], {"s0": {"a": "s1"}}, "s0")

    def test_from_function(self):
        machine = DFSM.from_function(
            states=[0, 1, 2],
            events=["inc"],
            delta=lambda s, e: (s + 1) % 3,
            initial=0,
        )
        assert machine.run(["inc", "inc"]) == 2

    def test_from_table(self):
        machine = DFSM.from_table([[1, 0], [0, 1]], initial=0, events=["x", "y"])
        assert machine.step(0, "x") == 1
        assert machine.step(0, "y") == 0

    def test_from_table_rejects_bad_shape(self):
        with pytest.raises(InvalidMachineError):
            DFSM.from_table([1, 2, 3])

    def test_from_table_rejects_out_of_range(self):
        with pytest.raises(InvalidMachineError):
            DFSM.from_table([[5]], initial=0)

    def test_transition_table_read_only(self):
        machine = simple_machine()
        with pytest.raises(ValueError):
            machine.transition_table[0, 0] = 1


class TestExecution:
    def test_step(self):
        machine = simple_machine()
        assert machine.step("s0", "a") == "s1"
        assert machine.step("s1", "a") == "s0"

    def test_step_ignores_unknown_event(self):
        machine = simple_machine()
        assert machine.step("s0", "not-an-event") == "s0"

    def test_step_unknown_state_raises(self):
        machine = simple_machine()
        with pytest.raises(UnknownStateError):
            machine.step("missing", "a")

    def test_event_index_unknown_raises(self):
        machine = simple_machine()
        with pytest.raises(UnknownEventError):
            machine.event_index("zzz")

    def test_run_from_initial(self):
        machine = simple_machine()
        assert machine.run(["a", "a", "a"]) == "s1"

    def test_run_from_custom_start(self):
        machine = simple_machine()
        assert machine.run(["a"], start="s1") == "s0"

    def test_run_ignores_foreign_events(self):
        counter = mod_counter(3, count_event=0, events=(0, 1))
        assert counter.run([0, 1, 1, 0, "noise", 0]) == "c0"

    def test_trajectory_includes_start(self):
        machine = simple_machine()
        assert machine.trajectory(["a", "b"]) == ["s0", "s1", "s1"]

    def test_run_batch_vectorised(self):
        machine = simple_machine()
        out = machine.run_batch(np.array([0, 1, 0]), "a")
        assert out.tolist() == [1, 0, 1]

    def test_run_batch_ignores_unknown_event(self):
        machine = simple_machine()
        out = machine.run_batch(np.array([0, 1]), "zzz")
        assert out.tolist() == [0, 1]

    def test_empty_run_returns_initial(self):
        machine = simple_machine()
        assert machine.run([]) == "s0"


class TestReachability:
    def test_fully_reachable(self):
        assert simple_machine().is_fully_reachable()

    def test_unreachable_states_detected(self):
        machine = DFSM(
            ["s0", "s1", "dead"],
            ["a"],
            {
                "s0": {"a": "s1"},
                "s1": {"a": "s0"},
                "dead": {"a": "dead"},
            },
            "s0",
        )
        assert not machine.is_fully_reachable()
        assert set(machine.reachable_states()) == {"s0", "s1"}

    def test_restricted_to_reachable(self):
        machine = DFSM(
            ["s0", "s1", "dead"],
            ["a"],
            {
                "s0": {"a": "s1"},
                "s1": {"a": "s0"},
                "dead": {"a": "dead"},
            },
            "s0",
        )
        pruned = machine.restricted_to_reachable()
        assert pruned.num_states == 2
        assert pruned.run(["a", "a", "a"]) == machine.run(["a", "a", "a"])

    def test_restrict_is_identity_when_already_reachable(self):
        machine = simple_machine()
        assert machine.restricted_to_reachable() is machine

    def test_validate_require_reachable(self):
        machine = DFSM(
            ["s0", "dead"],
            ["a"],
            {"s0": {"a": "s0"}, "dead": {"a": "dead"}},
            "s0",
        )
        machine.validate()  # structurally fine
        with pytest.raises(InvalidMachineError):
            machine.validate(require_reachable=True)


class TestComparison:
    def test_structural_equality(self):
        assert simple_machine() == simple_machine()

    def test_equality_ignores_name(self):
        machine = simple_machine()
        assert machine == machine.renamed("other-name")

    def test_inequality_on_different_transitions(self):
        other = DFSM(
            ["s0", "s1"],
            ["a", "b"],
            {
                "s0": {"a": "s0", "b": "s0"},
                "s1": {"a": "s0", "b": "s1"},
            },
            "s0",
        )
        assert simple_machine() != other

    def test_hash_consistent_with_equality(self):
        assert hash(simple_machine()) == hash(simple_machine())

    def test_isomorphism_under_relabelling(self):
        machine = simple_machine()
        relabelled = machine.relabelled({"s0": "x", "s1": "y"})
        assert machine.is_isomorphic_to(relabelled)
        assert relabelled.is_isomorphic_to(machine)

    def test_non_isomorphic_machines(self):
        counter2 = mod_counter(2, count_event="a", events=("a", "b"))
        other = DFSM(
            ["s0", "s1"],
            ["a", "b"],
            {
                "s0": {"a": "s1", "b": "s1"},
                "s1": {"a": "s0", "b": "s1"},
            },
            "s0",
        )
        assert not counter2.is_isomorphic_to(other)

    def test_isomorphism_requires_same_alphabet(self):
        assert not simple_machine().is_isomorphic_to(mesi())

    def test_relabelling_must_stay_injective(self):
        with pytest.raises(InvalidMachineError):
            simple_machine().relabelled({"s0": "x", "s1": "x"})

    def test_contains_and_iter(self):
        machine = simple_machine()
        assert "s0" in machine
        assert "nope" not in machine
        assert list(machine) == ["s0", "s1"]

    def test_transitions_as_dict_roundtrip(self):
        machine = simple_machine()
        rebuilt = DFSM(
            machine.states, machine.events, machine.transitions_as_dict(), machine.initial
        )
        assert rebuilt == machine

"""Unit tests for the incremental DFSM builder."""

from __future__ import annotations

import pytest

from repro import DFSM, DFSMBuilder, InvalidMachineError


class TestDFSMBuilder:
    def test_build_toggle(self):
        builder = DFSMBuilder(name="toggle")
        builder.add_transition("off", "press", "on")
        builder.add_transition("on", "press", "off")
        machine = builder.build(initial="off")
        assert machine.run(["press"] * 3) == "on"
        assert machine.name == "toggle"

    def test_states_registered_in_order(self):
        builder = DFSMBuilder()
        builder.add_transition("a", "x", "b").add_transition("b", "y", "c")
        assert builder.states == ("a", "b", "c")
        assert builder.events == ("x", "y")

    def test_missing_transitions_become_self_loops(self):
        builder = DFSMBuilder()
        builder.add_transition("a", "x", "b")
        builder.add_event("y")
        machine = builder.build(initial="a")
        assert machine.step("a", "y") == "a"
        assert machine.step("b", "x") == "b"

    def test_incomplete_build_without_self_loops_fails(self):
        builder = DFSMBuilder()
        builder.add_transition("a", "x", "b")
        with pytest.raises(InvalidMachineError):
            builder.build(initial="a", complete_with_self_loops=False)

    def test_complete_build_without_self_loops(self):
        builder = DFSMBuilder()
        builder.add_transition("a", "x", "b")
        builder.add_transition("b", "x", "a")
        machine = builder.build(initial="a", complete_with_self_loops=False)
        assert machine.num_states == 2

    def test_add_state_idempotent(self):
        builder = DFSMBuilder()
        builder.add_state("a").add_state("a")
        assert builder.states == ("a",)

    def test_builder_result_is_regular_dfsm(self):
        builder = DFSMBuilder()
        builder.add_transition("a", "x", "a")
        machine = builder.build(initial="a")
        assert isinstance(machine, DFSM)
        machine.validate(require_reachable=True)

    def test_initial_must_exist(self):
        builder = DFSMBuilder()
        builder.add_transition("a", "x", "a")
        with pytest.raises(InvalidMachineError):
            builder.build(initial="missing")

"""Unit tests for the exhaustive fusion search (the greedy-vs-optimal ablation)."""

from __future__ import annotations

import pytest

from repro import (
    FusionError,
    FusionExistenceError,
    enumerate_closed_partitions,
    find_all_fusions,
    find_minimum_state_fusion,
    generate_fusion,
    is_fusion,
    is_minimal_fusion,
    machine_from_partition,
)
from repro.machines import fig3_partition


def _machine(name, product):
    return machine_from_partition(product.machine, fig3_partition(name, product), name=name)


class TestEnumeration:
    def test_enumerates_full_fig3_lattice(self, fig2_top):
        assert len(enumerate_closed_partitions(fig2_top)) == 10


class TestFindAllFusions:
    def test_all_1_1_fusions_of_fig2_pair(self, fig2_machines_pair, fig2_product):
        fusions = find_all_fusions(fig2_machines_pair, f=1, m=1, product=fig2_product)
        found = {combo[0] for combo in fusions}
        # Exactly the lattice elements that separate both weakest edges.
        expected_members = {fig3_partition(n, fig2_product) for n in ("top", "M1", "M2", "M6")}
        assert found == expected_members

    def test_all_2_2_fusions_exclude_m1_m6(self, fig2_machines_pair, fig2_product):
        fusions = find_all_fusions(fig2_machines_pair, f=2, m=2, product=fig2_product)
        as_sets = [frozenset(combo) for combo in fusions]
        m1, m6 = fig3_partition("M1", fig2_product), fig3_partition("M6", fig2_product)
        m2 = fig3_partition("M2", fig2_product)
        assert frozenset({m1, m2}) in as_sets
        assert frozenset({m1, m6}) not in as_sets

    def test_duplicates_allowed_by_default(self, fig2_machines_pair, fig2_product):
        fusions = find_all_fusions(fig2_machines_pair, f=1, m=2, product=fig2_product)
        top_p = fig3_partition("top", fig2_product)
        assert any(combo.count(top_p) == 2 for combo in fusions)

    def test_duplicates_disallowed(self, fig2_machines_pair, fig2_product):
        fusions = find_all_fusions(
            fig2_machines_pair, f=1, m=2, product=fig2_product, allow_duplicates=False
        )
        assert all(len(set(combo)) == 2 for combo in fusions)

    def test_impossible_request_returns_empty(self, fig2_machines_pair, fig2_product):
        assert find_all_fusions(fig2_machines_pair, f=2, m=1, product=fig2_product) == []


class TestMinimumStateFusion:
    def test_optimal_1_fusion_has_two_states(self, fig2_machines_pair, fig2_product):
        best = find_minimum_state_fusion(fig2_machines_pair, f=1, product=fig2_product)
        assert best.backup_sizes == (2,)
        assert is_fusion(fig2_machines_pair, best.backups, 1, product=fig2_product)

    def test_optimal_beats_or_matches_greedy(self, fig2_machines_pair, fig2_product):
        greedy = generate_fusion(fig2_machines_pair, f=2, product=fig2_product)
        best = find_minimum_state_fusion(fig2_machines_pair, f=2, product=fig2_product)
        assert best.fusion_state_space <= greedy.fusion_state_space

    def test_sum_objective(self, fig2_machines_pair, fig2_product):
        best = find_minimum_state_fusion(
            fig2_machines_pair, f=2, objective="sum", product=fig2_product
        )
        assert sum(best.backup_sizes) <= 6

    def test_invalid_objective(self, fig2_machines_pair):
        with pytest.raises(FusionError):
            find_minimum_state_fusion(fig2_machines_pair, f=1, objective="nope")

    def test_nonexistent_fusion_raises(self, fig2_machines_pair, fig2_product):
        with pytest.raises(FusionExistenceError):
            find_minimum_state_fusion(fig2_machines_pair, f=2, m=1, product=fig2_product)

    def test_zero_backups_when_inherently_tolerant(self, fig2_machines_pair, fig2_product):
        machines = list(fig2_machines_pair) + [_machine("M1", fig2_product)]
        best = find_minimum_state_fusion(machines, f=1)
        assert best.num_backups == 0


class TestMinimality:
    def test_m1_m2_is_minimal(self, fig2_machines_pair, fig2_product):
        backups = [_machine("M1", fig2_product), _machine("M2", fig2_product)]
        assert is_minimal_fusion(fig2_machines_pair, backups, f=2, product=fig2_product)

    def test_m1_top_is_not_minimal(self, fig2_machines_pair, fig2_product):
        backups = [_machine("M1", fig2_product), _machine("top", fig2_product)]
        assert not is_minimal_fusion(fig2_machines_pair, backups, f=2, product=fig2_product)

    def test_single_m6_is_minimal_for_one_fault(self, fig2_machines_pair, fig2_product):
        backups = [_machine("M6", fig2_product)]
        assert is_minimal_fusion(fig2_machines_pair, backups, f=1, product=fig2_product)

    def test_single_top_is_not_minimal_for_one_fault(self, fig2_machines_pair, fig2_product):
        backups = [_machine("top", fig2_product)]
        assert not is_minimal_fusion(fig2_machines_pair, backups, f=1, product=fig2_product)

    def test_invalid_fusion_rejected(self, fig2_machines_pair, fig2_product):
        backups = [_machine("M1", fig2_product), _machine("M6", fig2_product)]
        with pytest.raises(FusionError):
            is_minimal_fusion(fig2_machines_pair, backups, f=2, product=fig2_product)

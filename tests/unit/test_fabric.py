"""Unit tests for the adversarial network fabric.

Each network fault kind is forced deterministically (probability 1 with
a tight ``max_faults`` budget) and the delivery protocol's counter is
asserted: sequence numbers reject duplicates and stale reorders, retries
outlast drops and partitions, bounded delays land inside the ack window
or bounce off the seq guard, and a link that never acknowledges is
declared dead — becoming a crash fault.
"""

from __future__ import annotations

import pytest

from repro.core.exceptions import SimulationError
from repro.machines import fig1_counter_a, fig1_counter_b
from repro.simulation.fabric import (
    NetworkChaosSpec,
    NetworkFabric,
    NetworkFaultKind,
    network_chaos_from_env,
)
from repro.simulation.faults import FaultInjector, FaultKind
from repro.simulation.server import Server, ServerStatus
from repro.simulation.trace import ExecutionTrace

WORKLOAD = [0, 1, 0, 0, 1, 0, 1, 1] * 4


def _fleet():
    machines = [fig1_counter_a(), fig1_counter_b()]
    return machines, {m.name: Server(m) for m in machines}


def _reference_states(machines, events):
    servers = {m.name: Server(m) for m in machines}
    for event in events:
        for server in servers.values():
            server.apply(event)
    return {name: server.report_state() for name, server in servers.items()}


class TestNetworkChaosSpec:
    def test_parse_round_trip(self):
        spec = NetworkChaosSpec.parse(
            "drop=0.2,duplicate=0.1,reorder=0.05,delay=0.1,partition=0.02,"
            "max_delay=4,partition_ticks=8,servers=a+b,max=9,seed=13"
        )
        assert NetworkChaosSpec.parse(spec.spec_string()).spec_string() == spec.spec_string()
        assert spec.max_delay_ticks == 4
        assert spec.partition_ticks == 8
        assert spec.seed == 13

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(SimulationError, match="unknown REPRO_NET_CHAOS key"):
            NetworkChaosSpec.parse("dorp=0.5")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(SimulationError, match="invalid REPRO_NET_CHAOS value"):
            NetworkChaosSpec.parse("drop=lots")

    def test_parse_rejects_bare_entry(self):
        with pytest.raises(SimulationError, match="key=value"):
            NetworkChaosSpec.parse("drop")

    def test_probability_bounds_checked(self):
        with pytest.raises(SimulationError, match="must be in"):
            NetworkChaosSpec({NetworkFaultKind.DROP: 1.5})

    def test_budget_limits_injection(self):
        spec = NetworkChaosSpec({NetworkFaultKind.DROP: 1.0}, max_faults=2, seed=1)
        draws = [spec.draw("s") for _ in range(5)]
        assert sum(1 for d in draws if d is not None) == 2
        assert not spec.active

    def test_server_filter(self):
        spec = NetworkChaosSpec(
            {NetworkFaultKind.DROP: 1.0}, servers=("only-this",), seed=1
        )
        assert spec.draw("someone-else") is None
        assert spec.draw("only-this") is not None

    def test_draws_are_deterministic_in_seed(self):
        def schedule(seed):
            spec = NetworkChaosSpec(
                {NetworkFaultKind.DROP: 0.4, NetworkFaultKind.DELAY: 0.3}, seed=seed
            )
            return [spec.draw("s") for _ in range(50)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_NET_CHAOS", raising=False)
        assert network_chaos_from_env() is None
        monkeypatch.setenv("REPRO_NET_CHAOS", "drop=0.5,seed=3")
        spec = network_chaos_from_env()
        assert spec is not None and spec.active
        monkeypatch.setenv("REPRO_NET_CHAOS", "drop=0.0")
        assert network_chaos_from_env() is None  # inactive spec -> no fabric

    def test_injector_builder_validates_servers(self):
        injector = FaultInjector(["a", "b"], seed=1)
        with pytest.raises(SimulationError, match="unknown servers"):
            injector.network_chaos(seed=1, drop=0.5, servers=["ghost"])
        spec = injector.network_chaos(seed=1, drop=0.5, servers=["a"])
        assert spec.draw("b") is None

    def test_network_kinds_cannot_be_scheduled_as_server_faults(self):
        injector = FaultInjector(["a"], seed=1)
        from repro.simulation.faults import FaultEvent, FaultPlan

        with pytest.raises(SimulationError, match="network_chaos instead"):
            FaultPlan((FaultEvent("a", FaultKind.DROP, 0),))
        assert FaultKind.DROP.targets_network
        assert not FaultKind.CRASH.targets_network


class TestNetworkFabricProtocol:
    def test_perfect_network_is_exactly_once(self):
        machines, servers = _fleet()
        trace = ExecutionTrace()
        fabric = NetworkFabric(servers, chaos=None, trace=trace)
        for step, event in enumerate(WORKLOAD, start=1):
            outcomes = fabric.broadcast(event, step)
            assert set(outcomes.values()) == {"delivered"}
        assert {n: s.report_state() for n, s in servers.items()} == _reference_states(
            machines, WORKLOAD
        )
        assert fabric.stats.delivered == len(WORKLOAD) * len(servers)
        assert fabric.stats.retries == 0
        assert fabric.stats.faults_injected == 0

    @pytest.mark.parametrize(
        "spec_string, expected_faults",
        [
            ("drop=1.0,max=6,seed=3", 6),
            ("duplicate=1.0,max=6,seed=3", 6),
            ("reorder=1.0,max=6,seed=3", 6),
            ("delay=1.0,max=6,seed=3", 6),
            # A p=1 partition re-partitions the instant the link heals,
            # so bound it tighter than the retry budget.
            ("partition=1.0,max=2,partition_ticks=3,seed=3", 2),
        ],
    )
    def test_each_fault_kind_is_defeated(self, spec_string, expected_faults):
        machines, servers = _fleet()
        spec = NetworkChaosSpec.parse(spec_string)
        fabric = NetworkFabric(servers, chaos=spec, trace=ExecutionTrace())
        for step, event in enumerate(WORKLOAD, start=1):
            outcomes = fabric.broadcast(event, step)
            assert set(outcomes.values()) == {"delivered"}
        assert {n: s.report_state() for n, s in servers.items()} == _reference_states(
            machines, WORKLOAD
        )
        assert spec.injected == expected_faults

    def test_duplicates_are_rejected_by_seq_guard(self):
        _, servers = _fleet()
        spec = NetworkChaosSpec.parse("duplicate=1.0,seed=3")
        fabric = NetworkFabric(servers, chaos=spec)
        for step, event in enumerate(WORKLOAD, start=1):
            fabric.broadcast(event, step)
        assert fabric.stats.duplicates == len(WORKLOAD) * len(servers)
        assert fabric.stats.stale_rejected >= fabric.stats.duplicates
        # Exactly-once despite a duplicate of every single message:
        for server in servers.values():
            assert server.events_applied == len(WORKLOAD)

    def test_unacknowledged_link_is_declared_dead(self):
        machines, servers = _fleet()
        victim = machines[0].name
        spec = NetworkChaosSpec(
            {NetworkFaultKind.DROP: 1.0}, servers=(victim,), seed=3
        )
        trace = ExecutionTrace()
        fabric = NetworkFabric(servers, chaos=spec, trace=trace, max_attempts=4)
        outcomes = fabric.broadcast(WORKLOAD[0], 1)
        assert outcomes[victim] == "link_dead"
        assert fabric.link_is_dead(victim)
        assert fabric.dead_links() == (victim,)
        assert fabric.take_new_deaths() == (victim,)
        assert fabric.take_new_deaths() == ()  # drained
        assert servers[victim].status is ServerStatus.CRASHED
        # The link death is a crash fault in the trace (replayable).
        faults = trace.faults()
        assert len(faults) == 1 and faults[0].payload["fault_kind"] == "crash"
        # Ground truth still advances on the crashed server.
        assert servers[victim].true_state is not None
        # Later broadcasts skip the dead link but keep ground truth moving.
        outcomes = fabric.broadcast(WORKLOAD[1], 2)
        assert outcomes[victim] == "crashed"

    def test_heartbeats_detect_crashes(self):
        _, servers = _fleet()
        fabric = NetworkFabric(servers, chaos=None)
        assert fabric.heartbeat(1) == ()
        victim = next(iter(servers))
        servers[victim].crash()
        assert fabric.heartbeat(2) == (victim,)
        assert fabric.stats.heartbeats_missed == 1

    def test_same_seed_same_delivery_schedule(self):
        def outcomes(seed):
            machines, servers = _fleet()
            spec = NetworkChaosSpec.parse(
                "drop=0.3,duplicate=0.2,reorder=0.1,delay=0.2,partition=0.05,seed=%d"
                % seed
            )
            trace = ExecutionTrace()
            fabric = NetworkFabric(servers, chaos=spec, trace=trace)
            for step, event in enumerate(WORKLOAD, start=1):
                fabric.broadcast(event, step)
            return [
                (r.payload["server"], r.payload["outcome"], r.payload["message_seq"])
                for r in trace.deliveries()
            ]

        assert outcomes(11) == outcomes(11)
        assert outcomes(11) != outcomes(12)

    def test_empty_fleet_rejected(self):
        with pytest.raises(SimulationError, match="at least one server"):
            NetworkFabric({})

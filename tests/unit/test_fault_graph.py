"""Unit tests for fault graphs, distance and dmin (Section 3, Fig. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FaultGraph, Partition, PartitionError, build_fault_graph, dmin_of_machines, separation_matrix
from repro.machines import fig3_partition


def _p(name, product):
    return fig3_partition(name, product)


class TestSeparationMatrix:
    def test_identity_partition_separates_everything(self):
        matrix = separation_matrix(Partition.identity(3))
        assert matrix.sum() == 6  # all off-diagonal entries
        assert not matrix.diagonal().any()

    def test_single_block_separates_nothing(self):
        assert separation_matrix(Partition.single_block(3)).sum() == 0


class TestFig4Graphs:
    def test_graph_of_a_alone(self, fig2_product):
        # Fig. 4(i): edge (t0, t3) has weight 0, all other edges weight 1.
        graph = FaultGraph(4, [_p("A", fig2_product)], state_labels=fig2_product.machine.states)
        assert graph.distance(("a0", "b0"), ("a0", "b2")) == 0
        assert graph.distance(("a0", "b0"), ("a1", "b1")) == 1
        assert graph.distance(("a2", "b2"), ("a0", "b2")) == 1
        assert graph.dmin() == 0

    def test_graph_of_a_and_b(self, fig2_fault_graph):
        # Fig. 4(ii): dmin = 1; the (t0,t1) edge has weight 2.
        assert fig2_fault_graph.dmin() == 1
        assert fig2_fault_graph.distance(("a0", "b0"), ("a1", "b1")) == 2
        assert fig2_fault_graph.distance(("a0", "b0"), ("a0", "b2")) == 1
        assert fig2_fault_graph.distance(("a2", "b2"), ("a0", "b2")) == 1

    def test_graph_of_basis_has_dmin_three(self, fig2_product):
        # Fig. 4(iii): G({A, B, M1, M2}) has smallest distance 3.
        graph = FaultGraph(
            4,
            [_p(n, fig2_product) for n in ("A", "B", "M1", "M2")],
            state_labels=fig2_product.machine.states,
        )
        assert graph.dmin() == 3

    def test_graph_with_top_machine(self, fig2_product):
        # Fig. 4(iv): G({A, B, M1, top}) also has dmin 3.
        graph = FaultGraph(
            4,
            [_p(n, fig2_product) for n in ("A", "B", "M1", "top")],
            state_labels=fig2_product.machine.states,
        )
        assert graph.dmin() == 3

    def test_graph_with_m6_and_top(self, fig2_product):
        # Fig. 4(v): G({A, B, M6, top}).
        graph = FaultGraph(
            4,
            [_p(n, fig2_product) for n in ("A", "B", "M6", "top")],
            state_labels=fig2_product.machine.states,
        )
        assert graph.dmin() == 3

    def test_m1_m6_is_not_enough_for_two_faults(self, fig2_product):
        # dmin({A, B, M1, M6}) = 2 (Section 4's converse example).
        graph = FaultGraph(
            4,
            [_p(n, fig2_product) for n in ("A", "B", "M1", "M6")],
            state_labels=fig2_product.machine.states,
        )
        assert graph.dmin() == 2


class TestFaultGraphApi:
    def test_from_machines_equals_from_cross_product(self, fig2_machines_pair, fig2_product):
        by_machines = FaultGraph.from_machines(fig2_product.machine, fig2_machines_pair)
        by_product = FaultGraph.from_cross_product(fig2_product)
        assert np.array_equal(by_machines.weight_matrix, by_product.weight_matrix)

    def test_weight_matrix_symmetric_zero_diagonal(self, fig2_fault_graph):
        weights = fig2_fault_graph.weight_matrix
        assert np.array_equal(weights, weights.T)
        assert not weights.diagonal().any()

    def test_weight_matrix_read_only(self, fig2_fault_graph):
        with pytest.raises(ValueError):
            fig2_fault_graph.weight_matrix[0, 0] = 99

    def test_weakest_edges(self, fig2_fault_graph, fig2_top):
        weakest = fig2_fault_graph.weakest_edges()
        labels = fig2_top.states
        as_labels = {frozenset({labels[i], labels[j]}) for i, j in weakest}
        assert as_labels == {
            frozenset({("a0", "b0"), ("a0", "b2")}),
            frozenset({("a2", "b2"), ("a0", "b2")}),
        }

    def test_edges_below(self, fig2_fault_graph):
        assert set(fig2_fault_graph.edges_below(2)) == set(fig2_fault_graph.weakest_edges())
        assert len(fig2_fault_graph.edges_below(100)) == 6

    def test_with_partition_is_incremental(self, fig2_fault_graph, fig2_product):
        extended = fig2_fault_graph.with_partition(_p("M1", fig2_product), name="M1")
        assert extended.num_machines == 3
        assert extended.dmin() == 2
        # The original graph is untouched (immutability).
        assert fig2_fault_graph.num_machines == 2

    def test_dmin_with_matches_with_partition(self, fig2_fault_graph, fig2_product):
        candidate = _p("M1", fig2_product)
        assert fig2_fault_graph.dmin_with(candidate) == fig2_fault_graph.with_partition(candidate).dmin()

    def test_covers(self, fig2_fault_graph, fig2_product):
        weakest = fig2_fault_graph.weakest_edges()
        assert fig2_fault_graph.covers(_p("M1", fig2_product), weakest)
        assert not fig2_fault_graph.covers(_p("M3", fig2_product), weakest)

    def test_distance_by_index(self, fig2_fault_graph):
        assert fig2_fault_graph.distance(0, 1) == fig2_fault_graph.weight(0, 1)

    def test_unknown_label_raises(self, fig2_fault_graph):
        with pytest.raises(PartitionError):
            fig2_fault_graph.distance(("zz", "zz"), ("a0", "b0"))

    def test_single_state_graph_conventions(self):
        graph = FaultGraph(1, [Partition.identity(1), Partition.identity(1)])
        assert graph.dmin() == 2
        assert graph.weakest_edges() == []

    def test_partition_size_mismatch_rejected(self):
        with pytest.raises(PartitionError):
            FaultGraph(4, [Partition.identity(3)])

    def test_machine_names_mismatch_rejected(self):
        with pytest.raises(PartitionError):
            FaultGraph(3, [Partition.identity(3)], machine_names=["a", "b"])

    def test_edges_listing(self, fig2_fault_graph):
        edges = fig2_fault_graph.edges()
        assert len(edges) == 6
        assert all(i < j for i, j, _ in edges)

    def test_as_label_dict(self, fig2_fault_graph):
        weights = fig2_fault_graph.as_label_dict()
        assert weights[(("a0", "b0"), ("a1", "b1"))] == 2

    def test_to_networkx(self, fig2_fault_graph):
        graph = fig2_fault_graph.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 6

    def test_module_level_helpers(self, fig2_machines_pair, fig2_top):
        assert dmin_of_machines(fig2_top, fig2_machines_pair) == 1
        assert build_fault_graph(fig2_top, fig2_machines_pair).dmin() == 1

    def test_condensed_weights_match_dense_matrix(self, fig2_fault_graph):
        rows, cols = np.triu_indices(fig2_fault_graph.num_states, k=1)
        assert np.array_equal(
            fig2_fault_graph.condensed_weights,
            fig2_fault_graph.weight_matrix[rows, cols],
        )

    def test_weakest_edge_arrays_match_list(self, fig2_fault_graph):
        rows, cols = fig2_fault_graph.weakest_edge_arrays()
        assert list(zip(rows.tolist(), cols.tolist())) == fig2_fault_graph.weakest_edges()


class TestResolveAmbiguity:
    """Regression tests: integer state labels must win over raw indices.

    Previously an integer that was a valid index but *not* a label was
    silently resolved as an index even on graphs whose labels are
    integers, so e.g. ``distance(1, ...)`` on a graph labelled
    ``(5, 7, 9)`` quietly addressed the state labelled 7.
    """

    def _graph(self, labels):
        return FaultGraph(3, [Partition.identity(3)], state_labels=labels)

    def test_integer_label_resolves_as_label_not_index(self):
        # Labels are a permutation of indices: label lookup must win.
        graph = self._graph((2, 0, 1))
        assert graph._resolve(2) == 0
        assert graph._resolve(0) == 1
        assert graph._resolve(1) == 2

    def test_non_label_integer_on_integer_labelled_graph_raises(self):
        graph = self._graph((5, 7, 9))
        assert graph.distance(5, 7) == 1  # labels resolve fine
        with pytest.raises(PartitionError):
            graph.distance(0, 5)  # 0 is a valid index but not a label

    def test_index_addressing_still_works_without_integer_labels(self):
        graph = self._graph(("x", "y", "z"))
        assert graph.distance(0, 1) == graph.distance("x", "y")

    def test_out_of_range_index_raises(self):
        graph = self._graph(("x", "y", "z"))
        with pytest.raises(PartitionError):
            graph.distance(0, 3)

    def test_unhashable_state_raises_cleanly(self):
        graph = self._graph(("x", "y", "z"))
        with pytest.raises(PartitionError):
            graph.distance(["x"], "y")

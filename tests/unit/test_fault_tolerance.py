"""Unit tests for Theorems 1, 2, 4 and Observation 1 as predicates."""

from __future__ import annotations

import pytest

from repro import (
    can_tolerate_byzantine_faults,
    can_tolerate_crash_faults,
    fusion_exists,
    inherent_fault_tolerance,
    max_byzantine_faults,
    max_crash_faults,
    minimum_backups_required,
    required_dmin,
    system_dmin,
    system_fault_graph,
)
from repro.core import CrossProduct, machine_from_partition
from repro.machines import fig3_partition


def _machine(name, product):
    return machine_from_partition(product.machine, fig3_partition(name, product), name=name)


class TestSystemDmin:
    def test_fig2_pair_has_dmin_one(self, fig2_machines_pair):
        assert system_dmin(fig2_machines_pair) == 1

    def test_adding_m1_raises_dmin(self, fig2_machines_pair, fig2_product):
        m1 = _machine("M1", fig2_product)
        assert system_dmin(fig2_machines_pair, backups=[m1], product=fig2_product) == 2

    def test_adding_basis_reaches_three(self, fig2_machines_pair, fig2_product):
        backups = [_machine("M1", fig2_product), _machine("M2", fig2_product)]
        assert system_dmin(fig2_machines_pair, backups=backups, product=fig2_product) == 3

    def test_system_fault_graph_returns_product(self, fig2_machines_pair):
        graph, product = system_fault_graph(fig2_machines_pair)
        assert product.num_states == 4
        assert graph.num_machines == 2


class TestTheorem1And2:
    def test_pair_cannot_tolerate_one_crash(self, fig2_machines_pair):
        assert not can_tolerate_crash_faults(fig2_machines_pair, 1)
        assert can_tolerate_crash_faults(fig2_machines_pair, 0)

    def test_with_m1_m2_two_crashes_tolerated(self, fig2_machines_pair, fig2_product):
        backups = [_machine("M1", fig2_product), _machine("M2", fig2_product)]
        assert can_tolerate_crash_faults(fig2_machines_pair, 2, backups=backups)
        assert not can_tolerate_crash_faults(fig2_machines_pair, 3, backups=backups)

    def test_with_m1_m2_one_byzantine_tolerated(self, fig2_machines_pair, fig2_product):
        # Section 3's worked example: dmin = 3 gives 1 Byzantine fault, not 2.
        backups = [_machine("M1", fig2_product), _machine("M2", fig2_product)]
        assert can_tolerate_byzantine_faults(fig2_machines_pair, 1, backups=backups)
        assert not can_tolerate_byzantine_faults(fig2_machines_pair, 2, backups=backups)

    def test_fig1_hand_fusions_tolerate_one_byzantine(self, fig1_counters, fig1_hand_fusions):
        assert can_tolerate_byzantine_faults(fig1_counters, 1, backups=fig1_hand_fusions)

    def test_max_faults_helpers(self, fig2_machines_pair, fig2_product):
        backups = [_machine("M1", fig2_product), _machine("M2", fig2_product)]
        assert max_crash_faults(fig2_machines_pair, backups=backups) == 2
        assert max_byzantine_faults(fig2_machines_pair, backups=backups) == 1
        assert max_crash_faults(fig2_machines_pair) == 0

    def test_negative_fault_counts_rejected(self, fig2_machines_pair):
        with pytest.raises(ValueError):
            can_tolerate_crash_faults(fig2_machines_pair, -1)
        with pytest.raises(ValueError):
            can_tolerate_byzantine_faults(fig2_machines_pair, -1)


class TestObservation1:
    def test_inherent_tolerance_of_pair(self, fig2_machines_pair):
        profile = inherent_fault_tolerance(fig2_machines_pair)
        assert profile.dmin == 1
        assert profile.crash_faults == 0
        assert profile.byzantine_faults == 0
        assert profile.top_size == 4
        assert profile.num_machines == 2

    def test_inherently_tolerant_set(self, fig2_machines_pair, fig2_product):
        # {A, B, M1} tolerates one crash fault with no backups (Section 4).
        machines = list(fig2_machines_pair) + [_machine("M1", fig2_product)]
        profile = inherent_fault_tolerance(machines)
        assert profile.dmin == 2
        assert profile.crash_faults == 1


class TestTheorem4:
    def test_required_dmin(self):
        assert required_dmin(2) == 3
        assert required_dmin(2, byzantine=True) == 5
        assert required_dmin(0) == 1
        with pytest.raises(ValueError):
            required_dmin(-1)

    def test_no_2_1_fusion_exists_for_fig2_pair(self, fig2_machines_pair):
        # Section 4: there cannot exist a (2, 1)-fusion of {A, B}.
        assert not fusion_exists(fig2_machines_pair, f=2, m=1)
        assert fusion_exists(fig2_machines_pair, f=2, m=2)
        assert fusion_exists(fig2_machines_pair, f=1, m=1)

    def test_fusion_exists_input_validation(self, fig2_machines_pair):
        with pytest.raises(ValueError):
            fusion_exists(fig2_machines_pair, f=-1, m=0)

    def test_minimum_backups_required(self, fig2_machines_pair, fig1_counters):
        assert minimum_backups_required(fig2_machines_pair, 2) == 2
        assert minimum_backups_required(fig2_machines_pair, 1) == 1
        assert minimum_backups_required(fig1_counters, 1) == 1
        # Byzantine target doubles the distance requirement.
        assert minimum_backups_required(fig2_machines_pair, 1, byzantine=True) == 2

    def test_minimum_backups_zero_for_inherently_tolerant_sets(
        self, fig2_machines_pair, fig2_product
    ):
        machines = list(fig2_machines_pair) + [_machine("M1", fig2_product)]
        assert minimum_backups_required(machines, 1) == 0

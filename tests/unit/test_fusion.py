"""Unit tests for (f, m)-fusion generation (Algorithm 2) and the fusion order."""

from __future__ import annotations

import pytest

from repro import (
    CrossProduct,
    FusionError,
    FusionExistenceError,
    check_subset_theorem,
    fusion_order_leq,
    fusion_state_space,
    generate_byzantine_fusion,
    generate_fusion,
    is_fusion,
    machine_from_partition,
)
from repro.core.fusion import STRATEGIES
from repro.machines import fig3_partition, mod_counter


def _machine(name, product):
    return machine_from_partition(product.machine, fig3_partition(name, product), name=name)


class TestGenerateFusionFig2:
    def test_f1_produces_single_two_state_backup(self, fig2_machines_pair):
        result = generate_fusion(fig2_machines_pair, f=1)
        assert result.num_backups == 1
        assert result.backup_sizes == (2,)
        assert result.initial_dmin == 1
        assert result.final_dmin == 2

    def test_f1_backup_is_m6(self, fig2_machines_pair, fig2_product):
        # The paper's walk-through: the algorithm descends top -> M1 -> M6.
        result = generate_fusion(fig2_machines_pair, f=1, product=fig2_product)
        assert result.partitions[0] == fig3_partition("M6", fig2_product)

    def test_f2_produces_two_backups_with_dmin_three(self, fig2_fusion_result):
        assert fig2_fusion_result.num_backups == 2
        assert fig2_fusion_result.final_dmin == 3
        assert fig2_fusion_result.f == 2
        assert fig2_fusion_result.byzantine_f == 1

    def test_result_is_a_valid_fusion(self, fig2_machines_pair, fig2_fusion_result):
        assert is_fusion(fig2_machines_pair, fig2_fusion_result.backups, 2)

    def test_backup_count_equals_dmin_gap(self, fig2_fusion_result):
        gap = fig2_fusion_result.final_dmin - fig2_fusion_result.initial_dmin
        assert fig2_fusion_result.num_backups == gap

    def test_fusion_result_summary(self, fig2_fusion_result):
        summary = fig2_fusion_result.summary()
        assert summary["f"] == 2
        assert summary["top_size"] == 4
        assert summary["num_backups"] == 2
        assert summary["fusion_state_space"] == fig2_fusion_result.fusion_state_space

    def test_all_machines_property(self, fig2_fusion_result, fig2_machines_pair):
        assert fig2_fusion_result.all_machines[: len(fig2_machines_pair)] == tuple(fig2_machines_pair)

    def test_zero_faults_needs_no_backups(self, fig2_machines_pair):
        result = generate_fusion(fig2_machines_pair, f=0)
        assert result.num_backups == 0
        assert result.fusion_state_space == 1


class TestGenerateFusionFig1:
    def test_single_three_state_backup(self, fig1_fusion_result):
        # The automatically generated backup matches the hand-built
        # (n0 + n1) mod 3 fusion in size.
        assert fig1_fusion_result.backup_sizes == (3,)
        assert fig1_fusion_result.top_size == 9

    def test_hand_fusions_are_valid(self, fig1_counters, fig1_hand_fusions):
        for backup in fig1_hand_fusions:
            assert is_fusion(fig1_counters, [backup], 1)

    def test_byzantine_generation_doubles_distance(self, fig1_counters):
        result = generate_byzantine_fusion(fig1_counters, 1)
        assert result.final_dmin >= 3
        assert result.byzantine_f >= 1


class TestExistenceAndLimits:
    def test_max_backups_too_small_raises(self, fig2_machines_pair):
        with pytest.raises(FusionExistenceError):
            generate_fusion(fig2_machines_pair, f=2, max_backups=1)

    def test_max_backups_sufficient(self, fig2_machines_pair):
        result = generate_fusion(fig2_machines_pair, f=2, max_backups=2)
        assert result.num_backups == 2

    def test_empty_machine_set_rejected(self):
        with pytest.raises(FusionError):
            generate_fusion([], f=1)

    def test_negative_faults_rejected(self, fig2_machines_pair):
        with pytest.raises(ValueError):
            generate_fusion(fig2_machines_pair, f=-1)

    def test_unknown_strategy_rejected(self, fig2_machines_pair):
        with pytest.raises(FusionError):
            generate_fusion(fig2_machines_pair, f=1, strategy="not-a-strategy")

    def test_existing_backups_are_topped_up(self, fig2_machines_pair, fig2_product):
        m1 = _machine("M1", fig2_product)
        result = generate_fusion(
            fig2_machines_pair, f=2, existing_backups=[m1], product=fig2_product
        )
        # M1 already lifts dmin to 2, so only one new machine is needed.
        assert result.num_backups == 2  # M1 + one generated machine
        assert result.final_dmin == 3
        assert result.backups[0] is m1


class TestStrategies:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_every_strategy_yields_a_valid_fusion(self, fig2_machines_pair, strategy):
        result = generate_fusion(fig2_machines_pair, f=2, strategy=strategy)
        assert is_fusion(fig2_machines_pair, result.backups, 2)
        assert result.num_backups == 2

    def test_custom_strategy_callable(self, fig2_machines_pair):
        calls = []

        def pick_last(graph, candidates):
            calls.append(len(candidates))
            return candidates[-1]

        result = generate_fusion(fig2_machines_pair, f=1, strategy=pick_last)
        assert is_fusion(fig2_machines_pair, result.backups, 1)
        assert calls  # the strategy was consulted


class TestFusionPredicates:
    def test_is_fusion_counterexample(self, fig2_machines_pair, fig2_product):
        # {M1, M6} is NOT a (2, 2)-fusion even though each is a (1, 1)-fusion.
        m1, m6 = _machine("M1", fig2_product), _machine("M6", fig2_product)
        assert is_fusion(fig2_machines_pair, [m1], 1)
        assert is_fusion(fig2_machines_pair, [m6], 1)
        assert not is_fusion(fig2_machines_pair, [m1, m6], 2)

    def test_fusion_state_space(self, fig2_product):
        machines = [_machine("M1", fig2_product), _machine("M2", fig2_product)]
        assert fusion_state_space(machines) == 9
        assert fusion_state_space([]) == 1

    def test_subset_theorem_on_basis_fusion(self, fig2_machines_pair, fig2_product):
        # Theorem 3: dropping t machines from an (f, m)-fusion leaves an
        # (f - t, m - t)-fusion.
        backups = [_machine("M1", fig2_product), _machine("M2", fig2_product)]
        assert check_subset_theorem(fig2_machines_pair, backups, f=2, t=1)
        assert check_subset_theorem(fig2_machines_pair, backups, f=2, t=2)

    def test_subset_theorem_requires_valid_fusion(self, fig2_machines_pair, fig2_product):
        backups = [_machine("M1", fig2_product), _machine("M6", fig2_product)]
        with pytest.raises(FusionError):
            check_subset_theorem(fig2_machines_pair, backups, f=2, t=1)

    def test_subset_theorem_bad_t(self, fig2_machines_pair, fig2_product):
        backups = [_machine("M1", fig2_product), _machine("M2", fig2_product)]
        with pytest.raises(ValueError):
            check_subset_theorem(fig2_machines_pair, backups, f=2, t=3)


class TestFusionOrder:
    def test_m1_m2_less_than_m1_top(self, fig2_machines_pair, fig2_product):
        # Section 4: {M1, M2} < {M1, top}, so {M1, top} is not minimal.
        top_machine = _machine("top", fig2_product)
        m1, m2 = _machine("M1", fig2_product), _machine("M2", fig2_product)
        smaller, larger = [m1, m2], [m1, top_machine]
        top = fig2_product.machine
        assert fusion_order_leq(smaller, larger, top)
        assert not fusion_order_leq(larger, smaller, top)

    def test_order_requires_equal_sizes(self, fig2_product):
        top = fig2_product.machine
        assert not fusion_order_leq([_machine("M1", fig2_product)], [], top)

    def test_order_reflexive(self, fig2_product):
        top = fig2_product.machine
        machines = [_machine("M1", fig2_product), _machine("M2", fig2_product)]
        assert fusion_order_leq(machines, machines, top)

    def test_empty_fusions_are_comparable(self, fig2_product):
        assert fusion_order_leq([], [], fig2_product.machine)


class TestSharedAlphabetScaling:
    def test_many_counters_need_single_backup(self):
        # The sensor-network scenario: many counters over a shared stream
        # still need only one backup machine for f = 1.
        counters = [
            mod_counter(3, count_event=e, events=(0, 1, 2), name="c%d" % e) for e in (0, 1, 2)
        ]
        result = generate_fusion(counters, f=1)
        assert result.num_backups == 1
        assert is_fusion(counters, result.backups, 1)

"""Unit tests for JSON serialisation and DOT export."""

from __future__ import annotations

import json

import pytest

from repro import ClosedPartitionLattice, FaultGraph, SerializationError, generate_fusion
from repro.core.exceptions import MalformedMachineError
from repro.io import (
    dump_machine,
    dumps_machine,
    fault_graph_to_dot,
    fusion_result_to_dict,
    lattice_to_dot,
    load_machine,
    loads_machine,
    machine_from_dict,
    machine_to_dict,
    machine_to_dot,
)
from repro.machines import (
    available_machines,
    fig2_machine_a,
    get_machine,
    mesi,
    random_dfsm,
    random_machine_family,
    tcp,
)


class TestJsonRoundTrip:
    @pytest.mark.parametrize("name", ["mesi", "tcp", "shift_register", "fig2_machine_a", "vending_machine"])
    def test_registry_machines_roundtrip(self, name):
        machine = get_machine(name)
        assert loads_machine(dumps_machine(machine)) == machine

    def test_tuple_and_frozenset_labels_roundtrip(self, fig2_machines_pair):
        # Fusion machines have frozensets of tuples as state labels.
        result = generate_fusion(fig2_machines_pair, f=1)
        backup = result.backups[0]
        assert loads_machine(dumps_machine(backup)) == backup

    def test_dict_format_fields(self):
        data = machine_to_dict(mesi())
        assert data["format"] == "repro.dfsm/1"
        assert data["name"] == "MESI"
        assert len(data["states"]) == 4
        assert len(data["transitions"]) == 4

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "machine.json")
        dump_machine(tcp(), path)
        assert load_machine(path) == tcp()

    def test_file_object_roundtrip(self, tmp_path):
        path = tmp_path / "machine.json"
        with open(path, "w") as handle:
            dump_machine(mesi(), handle)
        with open(path) as handle:
            assert load_machine(handle) == mesi()

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            loads_machine("{not json")

    def test_wrong_format_rejected(self):
        data = machine_to_dict(mesi())
        data["format"] = "something-else"
        with pytest.raises(SerializationError):
            machine_from_dict(data)

    def test_malformed_description_rejected(self):
        with pytest.raises(SerializationError):
            machine_from_dict({"format": "repro.dfsm/1", "states": [1]})

    def test_fusion_result_export_is_json_serialisable(self, fig2_machines_pair):
        result = generate_fusion(fig2_machines_pair, f=2)
        payload = fusion_result_to_dict(result)
        text = json.dumps(payload)
        assert "repro.fusion/1" in text
        assert len(payload["backups"]) == 2


class TestDotExport:
    def test_machine_dot_contains_states_and_initial_marker(self):
        dot = machine_to_dot(mesi())
        assert dot.startswith('digraph "MESI"')
        for state in ("I", "E", "S", "M"):
            assert '"%s"' % state in dot
        assert "__start" in dot

    def test_fault_graph_dot_edge_weights(self, fig2_fault_graph):
        dot = fault_graph_to_dot(fig2_fault_graph)
        assert dot.startswith("graph fault_graph")
        assert '"2"' in dot and '"1"' in dot

    def test_fault_graph_dot_zero_edge_filtering(self, fig2_product):
        from repro.machines import fig3_partition

        graph = FaultGraph(4, [fig3_partition("A", fig2_product)], state_labels=fig2_product.machine.states)
        with_zero = fault_graph_to_dot(graph, show_zero_edges=True)
        without_zero = fault_graph_to_dot(graph, show_zero_edges=False)
        assert with_zero.count("--") > without_zero.count("--")

    def test_lattice_dot(self, fig2_top):
        lattice = ClosedPartitionLattice(fig2_top)
        dot = lattice_to_dot(lattice)
        assert dot.startswith("digraph lattice")
        assert dot.count("->") == len(lattice.cover_edges())

    def test_lattice_dot_with_names(self, fig2_top):
        lattice = ClosedPartitionLattice(fig2_top)
        dot = lattice_to_dot(lattice, names={0: "TOP"})
        assert '"TOP"' in dot

    def test_every_registry_machine_exports(self):
        for name in available_machines():
            assert machine_to_dot(get_machine(name))


class TestMalformedMachineDiagnostics:
    """Satellite of the durability PR: ``machine_from_dict`` names the
    offending field in a typed :class:`MalformedMachineError` instead of
    failing deep inside ``DFSM`` construction."""

    def _doc(self, **overrides):
        data = machine_to_dict(mesi())
        data.update(overrides)
        return data

    def test_non_mapping_document(self):
        with pytest.raises(MalformedMachineError) as excinfo:
            machine_from_dict([1, 2, 3])
        assert excinfo.value.field == "document"

    def test_missing_field_named(self):
        data = self._doc()
        del data["transitions"]
        with pytest.raises(MalformedMachineError) as excinfo:
            machine_from_dict(data)
        assert excinfo.value.field == "transitions"
        assert "missing" in str(excinfo.value)

    def test_duplicate_state_labels_reported(self):
        data = self._doc()
        data["states"][1] = data["states"][0]
        with pytest.raises(MalformedMachineError) as excinfo:
            machine_from_dict(data)
        assert excinfo.value.field == "states"
        assert "duplicate" in str(excinfo.value)
        assert repr(mesi().states[0]) in str(excinfo.value)

    def test_duplicate_events_reported(self):
        data = self._doc()
        data["events"][1] = data["events"][0]
        with pytest.raises(MalformedMachineError) as excinfo:
            machine_from_dict(data)
        assert excinfo.value.field == "events"

    def test_unknown_initial_state(self):
        data = self._doc(initial="NOT-A-STATE")
        with pytest.raises(MalformedMachineError) as excinfo:
            machine_from_dict(data)
        assert excinfo.value.field == "initial"
        assert "NOT-A-STATE" in str(excinfo.value)

    def test_wrong_row_count(self):
        data = self._doc()
        data["transitions"] = data["transitions"][:-1]
        with pytest.raises(MalformedMachineError) as excinfo:
            machine_from_dict(data)
        assert excinfo.value.field == "transitions"

    def test_wrong_row_length(self):
        data = self._doc()
        data["transitions"][2] = data["transitions"][2][:-1]
        with pytest.raises(MalformedMachineError) as excinfo:
            machine_from_dict(data)
        assert excinfo.value.field == "transitions"
        assert "row 2" in str(excinfo.value)

    def test_transition_to_unknown_state_index(self):
        data = self._doc()
        data["transitions"][1][0] = 99
        with pytest.raises(MalformedMachineError) as excinfo:
            machine_from_dict(data)
        assert excinfo.value.field == "transitions"
        message = str(excinfo.value)
        assert "row 1" in message and "99" in message and "unknown state" in message

    def test_non_integer_transition_target(self):
        data = self._doc()
        data["transitions"][0][1] = True  # bools are not state indices
        with pytest.raises(MalformedMachineError) as excinfo:
            machine_from_dict(data)
        assert excinfo.value.field == "transitions"

    def test_malformed_error_is_a_serialization_error(self):
        # Callers catching the broad class keep working.
        with pytest.raises(SerializationError):
            machine_from_dict({"format": "repro.dfsm/1"})


class TestRandomMachineRoundTrip:
    """Property: every random machine survives dict and string round-trips."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_family_roundtrip(self, seed):
        machines = random_machine_family(
            count=3, num_states=4, events=("a", "b", 0), rng=seed
        )
        for machine in machines:
            assert machine_from_dict(machine_to_dict(machine)) == machine
            assert loads_machine(dumps_machine(machine)) == machine

    @pytest.mark.parametrize("seed", range(8))
    def test_random_unpruned_roundtrip(self, seed):
        machine = random_dfsm(6, events=(0, 1), rng=seed)
        round_tripped = loads_machine(dumps_machine(machine))
        assert round_tripped == machine
        assert round_tripped.name == machine.name

"""Unit tests for lower covers and the closed partition lattice (Fig. 3)."""

from __future__ import annotations

import pytest

from repro import ClosedPartitionLattice, Partition, PartitionError, basis, lower_cover, lower_cover_machines
from repro.machines import fig3_partition, mesi


class TestLowerCover:
    def test_basis_of_fig2_top_is_the_four_paper_machines(self, fig2_top, fig2_product):
        covers = basis(fig2_top)
        expected = {fig3_partition(name, fig2_product) for name in ("A", "B", "M1", "M2")}
        assert set(covers) == expected

    def test_lower_cover_of_a_is_m3_m4(self, fig2_top, fig2_product):
        covers = lower_cover(fig2_top, fig3_partition("A", fig2_product))
        expected = {fig3_partition("M3", fig2_product), fig3_partition("M4", fig2_product)}
        assert set(covers) == expected

    def test_lower_cover_of_m1_is_m3_m6(self, fig2_top, fig2_product):
        covers = lower_cover(fig2_top, fig3_partition("M1", fig2_product))
        expected = {fig3_partition("M3", fig2_product), fig3_partition("M6", fig2_product)}
        assert set(covers) == expected

    def test_lower_cover_of_m2_is_m4_m5_m6(self, fig2_top, fig2_product):
        covers = lower_cover(fig2_top, fig3_partition("M2", fig2_product))
        expected = {
            fig3_partition("M4", fig2_product),
            fig3_partition("M5", fig2_product),
            fig3_partition("M6", fig2_product),
        }
        assert set(covers) == expected

    def test_lower_cover_elements_are_strictly_below(self, fig2_top):
        top = Partition.identity(fig2_top.num_states)
        for cover in lower_cover(fig2_top, top):
            assert cover < top

    def test_lower_cover_of_bottom_is_empty(self, fig2_top):
        assert lower_cover(fig2_top, Partition.single_block(4)) == []

    def test_two_block_partition_covers_only_bottom(self, fig2_top, fig2_product):
        covers = lower_cover(fig2_top, fig3_partition("M6", fig2_product))
        assert covers == [Partition.single_block(4)]

    def test_size_mismatch_rejected(self, fig2_top):
        with pytest.raises(PartitionError):
            lower_cover(fig2_top, Partition.identity(9))

    def test_lower_cover_machines_are_quotients(self, fig2_top):
        machines = lower_cover_machines(fig2_top, name_prefix="Q")
        assert len(machines) == 4
        assert all(m.num_states == 3 for m in machines)
        assert machines[0].name.startswith("Q")


class TestClosedPartitionLattice:
    def test_fig3_lattice_has_ten_elements(self, fig2_top):
        lattice = ClosedPartitionLattice(fig2_top)
        assert lattice.size == 10

    def test_lattice_contains_all_named_machines(self, fig2_top, fig2_product):
        lattice = ClosedPartitionLattice(fig2_top)
        for name in ("top", "A", "B", "M1", "M2", "M3", "M4", "M5", "M6", "bottom"):
            assert fig3_partition(name, fig2_product) in lattice

    def test_top_and_bottom(self, fig2_top):
        lattice = ClosedPartitionLattice(fig2_top)
        assert lattice.top_partition == Partition.identity(4)
        assert lattice.bottom_partition == Partition.single_block(4)
        assert lattice.bottom_partition in lattice

    def test_every_element_is_closed(self, fig2_top):
        lattice = ClosedPartitionLattice(fig2_top)
        lattice.validate()

    def test_block_count_census_matches_fig3(self, fig2_top):
        lattice = ClosedPartitionLattice(fig2_top)
        assert len(lattice.partitions_with_block_count(4)) == 1  # top
        assert len(lattice.partitions_with_block_count(3)) == 4  # A, B, M1, M2
        assert len(lattice.partitions_with_block_count(2)) == 4  # M3..M6
        assert len(lattice.partitions_with_block_count(1)) == 1  # bottom

    def test_cover_edges_form_hasse_diagram(self, fig2_top):
        lattice = ClosedPartitionLattice(fig2_top)
        for upper, lower in lattice.cover_edges():
            assert lattice.partitions[lower] < lattice.partitions[upper]

    def test_networkx_export(self, fig2_top):
        lattice = ClosedPartitionLattice(fig2_top)
        graph = lattice.to_networkx()
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == len(lattice.cover_edges())

    def test_find_partition_by_blocks(self, fig2_top):
        lattice = ClosedPartitionLattice(fig2_top)
        found = lattice.find_partition_by_blocks(
            [[("a0", "b0"), ("a2", "b2")], [("a1", "b1")], [("a0", "b2")]]
        )
        assert found is not None  # that's M1
        missing = lattice.find_partition_by_blocks(
            [[("a0", "b0"), ("a1", "b1")], [("a2", "b2")], [("a0", "b2")]]
        )
        assert missing is None  # not closed, hence not in the lattice

    def test_index_of_unknown_partition_raises(self, fig2_top):
        lattice = ClosedPartitionLattice(fig2_top)
        with pytest.raises(PartitionError):
            lattice.index_of(Partition.from_blocks([[0, 1], [2], [3]], 4))

    def test_max_size_guard(self, fig2_top):
        with pytest.raises(PartitionError):
            ClosedPartitionLattice(fig2_top, max_size=3)

    def test_lattice_of_mesi_is_enumerable(self):
        lattice = ClosedPartitionLattice(mesi())
        assert lattice.size >= 2
        lattice.validate()

    def test_basis_method_matches_module_function(self, fig2_top):
        lattice = ClosedPartitionLattice(fig2_top)
        assert set(lattice.basis()) == set(basis(fig2_top))

    def test_machines_export(self, fig2_top):
        lattice = ClosedPartitionLattice(fig2_top)
        machines = lattice.machines(name_prefix="N")
        assert len(machines) == 10
        sizes = sorted(m.num_states for m in machines)
        assert sizes == [1, 2, 2, 2, 2, 3, 3, 3, 3, 4]

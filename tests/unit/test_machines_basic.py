"""Unit tests for counters, parity checkers, toggles, shift registers and patterns."""

from __future__ import annotations

import pytest

from repro import InvalidMachineError
from repro.machines import (
    bounded_counter,
    difference_counter,
    divider,
    even_parity_checker,
    mod_counter,
    multi_parity_checker,
    odd_parity_checker,
    one_counter,
    parity_checker,
    pattern_detector,
    pattern_generator,
    shift_register,
    sliding_window_register,
    sum_counter,
    toggle_switch,
    up_down_counter,
    zero_counter,
)


class TestCounters:
    def test_mod_counter_counts_its_event(self):
        counter = mod_counter(3, count_event=0, events=(0, 1))
        assert counter.run([0, 0, 1, 1, 0]) == "c0"
        assert counter.run([0, 1, 0]) == "c2"

    def test_mod_counter_ignores_other_events(self):
        counter = mod_counter(5, count_event="tick", events=("tick", "noise"))
        assert counter.run(["noise"] * 10) == "c0"

    def test_mod_counter_adds_count_event_to_alphabet(self):
        counter = mod_counter(3, count_event="extra", events=("a",))
        assert "extra" in counter.events

    def test_mod_counter_rejects_bad_modulus(self):
        with pytest.raises(InvalidMachineError):
            mod_counter(0, count_event=0)

    def test_zero_and_one_counters(self):
        z, o = zero_counter(), one_counter()
        events = [0, 1, 1, 0, 1]
        assert z.run(events) == "c2"
        assert o.run(events) == "c0"

    def test_sum_counter_tracks_total(self):
        machine = sum_counter(3, counted_events=(0, 1), events=(0, 1))
        assert machine.run([0, 1, 1]) == "s0"
        assert machine.run([0, 1]) == "s2"

    def test_difference_counter_wraps_both_ways(self):
        machine = difference_counter(3, plus_event=0, minus_event=1)
        assert machine.run([0, 0]) == "d2"
        assert machine.run([1]) == "d2"
        assert machine.run([0, 1, 0, 1]) == "d0"

    def test_divider_is_cyclic(self):
        machine = divider(4, tick_event="t", events=("t",))
        assert machine.num_states == 4
        assert machine.run(["t"] * 4) == "phase0"

    def test_bounded_counter_saturates_and_resets(self):
        machine = bounded_counter(2, up_event="inc", reset_event="reset")
        assert machine.run(["inc"] * 5) == "n2"
        assert machine.run(["inc", "inc", "reset"]) == "n0"

    def test_up_down_counter(self):
        machine = up_down_counter(4)
        assert machine.run(["up", "up", "down"]) == "u1"
        assert machine.run(["down"]) == "u3"

    def test_counter_size_parameters_validated(self):
        for factory in (sum_counter, divider, bounded_counter, up_down_counter):
            with pytest.raises(InvalidMachineError):
                if factory is sum_counter:
                    factory(0, counted_events=(0,))
                else:
                    factory(0)


class TestParityAndToggle:
    def test_parity_checker_flips(self):
        machine = parity_checker("bit", events=("bit", "other"))
        assert machine.run(["bit"]) == "odd"
        assert machine.run(["bit", "other", "bit"]) == "even"

    def test_even_and_odd_watch_different_events(self):
        even, odd = even_parity_checker(), odd_parity_checker()
        events = [0, 0, 1]
        assert even.run(events) == "even"
        assert odd.run(events) == "odd"

    def test_toggle_switch(self):
        machine = toggle_switch()
        assert machine.run(["toggle"]) == "on"
        assert machine.run(["toggle", "toggle"]) == "off"
        assert machine.num_states == 2

    def test_multi_parity_counts_all_watched(self):
        machine = multi_parity_checker(watch_events=(0, 1), events=(0, 1, 2))
        assert machine.run([0, 1]) == "even"
        assert machine.run([0, 2]) == "odd"


class TestShiftRegistersAndPatterns:
    def test_shift_register_has_2_pow_width_states(self):
        machine = shift_register(3)
        assert machine.num_states == 8
        assert machine.is_fully_reachable()

    def test_shift_register_records_last_bits(self):
        machine = shift_register(3, bit_events=(0, 1))
        assert machine.run([1, 0, 1, 1]) == "011"

    def test_shift_register_ignores_foreign_events(self):
        machine = shift_register(2, bit_events=(0, 1), events=(0, 1, "x"))
        assert machine.run([1, "x", 1]) == "11"

    def test_shift_register_width_validated(self):
        with pytest.raises(InvalidMachineError):
            shift_register(0)

    def test_sliding_window_register_reachable(self):
        machine = sliding_window_register(2, alphabet=("a", "b"))
        assert machine.is_fully_reachable()
        assert machine.run(["a", "b"]) == ("a", "b")

    def test_pattern_generator_cycles(self):
        machine = pattern_generator(4, step_event="step")
        assert machine.num_states == 4
        assert machine.run(["step"] * 4) == "p0"
        assert machine.run(["step"] * 5) == "p1"

    def test_pattern_generator_ignores_other_events(self):
        machine = pattern_generator(3, step_event="step", events=("step", "noise"))
        assert machine.run(["noise", "step"]) == "p1"

    def test_pattern_detector_detects(self):
        machine = pattern_detector((0, 1, 1), alphabet=(0, 1))
        assert machine.run([0, 1, 1]) == 3
        assert machine.run([0, 0, 1]) == 2  # suffix "0 1" matches a 2-prefix
        assert machine.run([1, 1, 1]) == 0

    def test_pattern_detector_overlapping_restart(self):
        machine = pattern_detector((0, 1, 0, 1), alphabet=(0, 1))
        # After a full match the next "0 1" should reuse the border.
        assert machine.run([0, 1, 0, 1, 0, 1]) == 4

    def test_pattern_detector_validates_pattern(self):
        with pytest.raises(InvalidMachineError):
            pattern_detector((), alphabet=(0, 1))
        with pytest.raises(InvalidMachineError):
            pattern_detector((7,), alphabet=(0, 1))

    def test_all_machines_fully_reachable(self):
        machines = [
            mod_counter(3, 0, events=(0, 1)),
            sum_counter(3, (0, 1)),
            difference_counter(3, 0, 1),
            parity_checker(0, events=(0, 1)),
            toggle_switch(),
            shift_register(3),
            pattern_generator(4),
            pattern_detector((0, 1), (0, 1)),
            bounded_counter(3),
            up_down_counter(3),
        ]
        for machine in machines:
            assert machine.is_fully_reachable(), machine.name

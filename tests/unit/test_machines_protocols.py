"""Unit tests for the protocol machines (MESI/MSI/MOESI, TCP), the misc
machines, random generation and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro import InvalidMachineError
from repro.machines import (
    available_machines,
    elevator,
    get_machine,
    mesi,
    moesi,
    msi,
    random_connected_dfsm,
    random_counter_family,
    random_dfsm,
    random_machine_family,
    register_machine,
    sensor_threshold,
    sliding_mode_controller,
    tcp,
    tcp_simplified,
    token_ring_station,
    traffic_light,
    turnstile,
    vending_machine,
)
from repro.machines.registry import MACHINE_REGISTRY


class TestCacheCoherence:
    def test_sizes(self):
        assert msi().num_states == 3
        assert mesi().num_states == 4
        assert moesi().num_states == 5

    def test_mesi_read_then_write(self):
        machine = mesi()
        assert machine.run(["local_read"]) == "E"
        assert machine.run(["local_read", "local_write"]) == "M"
        assert machine.run(["local_write"]) == "M"

    def test_mesi_demotion_on_bus_read(self):
        machine = mesi()
        assert machine.run(["local_write", "bus_read"]) == "S"
        assert machine.run(["local_read", "bus_read"]) == "S"

    def test_mesi_invalidation(self):
        machine = mesi()
        assert machine.run(["local_write", "bus_write"]) == "I"
        assert machine.run(["local_read", "evict"]) == "I"

    def test_moesi_owned_state(self):
        machine = moesi()
        assert machine.run(["local_write", "bus_read"]) == "O"
        assert machine.run(["local_write", "bus_read", "local_write"]) == "M"

    def test_all_cache_machines_reachable(self):
        for machine in (msi(), mesi(), moesi()):
            assert machine.is_fully_reachable()

    def test_extended_alphabet(self):
        machine = mesi(events=("local_read", "local_write", "evict", "bus_read", "bus_write", "extra"))
        assert machine.step("I", "extra") == "I"


class TestTcp:
    def test_eleven_states(self):
        assert tcp().num_states == 11

    def test_three_way_handshake_client(self):
        machine = tcp()
        assert machine.run(["active_open", "recv_syn_ack"]) == "ESTABLISHED"

    def test_passive_open_server(self):
        machine = tcp()
        assert machine.run(["passive_open", "recv_syn", "recv_ack"]) == "ESTABLISHED"

    def test_active_close_full_teardown(self):
        machine = tcp()
        path = ["active_open", "recv_syn_ack", "close", "recv_ack", "recv_fin", "timeout"]
        assert machine.run(path) == "CLOSED"

    def test_simultaneous_close(self):
        machine = tcp()
        path = ["active_open", "recv_syn_ack", "close", "recv_fin", "recv_ack"]
        assert machine.run(path) == "TIME_WAIT"

    def test_passive_close(self):
        machine = tcp()
        path = ["passive_open", "recv_syn", "recv_ack", "recv_fin", "close", "recv_ack"]
        assert machine.run(path) == "CLOSED"

    def test_reset_aborts(self):
        machine = tcp()
        assert machine.run(["active_open", "recv_syn_ack", "rst"]) == "CLOSED"

    def test_all_states_reachable(self):
        assert tcp().is_fully_reachable()
        assert tcp_simplified().is_fully_reachable()

    def test_simplified_has_five_states(self):
        assert tcp_simplified().num_states == 5


class TestMiscMachines:
    def test_traffic_light_cycles(self):
        machine = traffic_light()
        assert machine.run(["tick", "tick", "tick"]) == "green"

    def test_turnstile(self):
        machine = turnstile()
        assert machine.run(["push"]) == "locked"
        assert machine.run(["coin", "push"]) == "locked"
        assert machine.run(["coin"]) == "unlocked"

    def test_vending_machine_vends_only_when_paid(self):
        machine = vending_machine(price=2)
        assert machine.run(["coin", "vend"]) == "credit1"
        assert machine.run(["coin", "coin", "vend"]) == "credit0"
        assert machine.run(["coin", "cancel"]) == "credit0"

    def test_elevator_saturates(self):
        machine = elevator(floors=3)
        assert machine.run(["up"] * 10) == "floor2"
        assert machine.run(["down"] * 3) == "floor0"

    def test_token_ring_rotation(self):
        machine = token_ring_station(4)
        assert machine.run(["pass_token"] * 5) == "holder1"

    def test_sensor_threshold_bands(self):
        machine = sensor_threshold(levels=3)
        assert machine.run(["rise", "rise", "rise"]) == "band2"
        assert machine.run(["rise", "fall"]) == "band0"

    def test_mode_controller(self):
        machine = sliding_mode_controller()
        assert machine.run(["engage", "engage", "engage"]) == "holding"
        assert machine.run(["engage", "disengage"]) == "idle"

    def test_parameter_validation(self):
        with pytest.raises(InvalidMachineError):
            vending_machine(price=0)
        with pytest.raises(InvalidMachineError):
            elevator(floors=1)
        with pytest.raises(InvalidMachineError):
            token_ring_station(1)
        with pytest.raises(InvalidMachineError):
            sensor_threshold(levels=1)
        with pytest.raises(InvalidMachineError):
            sliding_mode_controller(modes=("only",))


class TestRandomMachines:
    def test_random_dfsm_is_reachable(self):
        machine = random_dfsm(8, events=(0, 1), rng=0)
        assert machine.is_fully_reachable()

    def test_random_connected_keeps_all_states(self):
        machine = random_connected_dfsm(12, events=(0, 1, 2), rng=1)
        assert machine.num_states == 12
        assert machine.is_fully_reachable()

    def test_determinism_with_same_seed(self):
        first = random_connected_dfsm(6, events=(0, 1), rng=42)
        second = random_connected_dfsm(6, events=(0, 1), rng=42)
        assert first == second

    def test_different_seeds_differ(self):
        first = random_connected_dfsm(10, events=(0, 1), rng=1)
        second = random_connected_dfsm(10, events=(0, 1), rng=2)
        assert first != second

    def test_counter_family(self):
        family = random_counter_family(10, modulus=3, num_events=4, rng=3)
        assert len(family) == 10
        assert all(m.num_states == 3 for m in family)
        assert len({m.name for m in family}) == 10

    def test_machine_family(self):
        family = random_machine_family(4, 5, events=(0, 1), rng=7)
        assert len(family) == 4
        assert all(m.num_states == 5 for m in family)

    def test_validation(self):
        with pytest.raises(InvalidMachineError):
            random_dfsm(0, events=(0,))
        with pytest.raises(InvalidMachineError):
            random_connected_dfsm(3, events=())
        with pytest.raises(InvalidMachineError):
            random_counter_family(0)


class TestRegistry:
    def test_all_registered_machines_build_and_validate(self):
        for name in available_machines():
            machine = get_machine(name)
            machine.validate()

    def test_get_machine_with_kwargs(self):
        machine = get_machine("mesi", name="my-mesi")
        assert machine.name == "my-mesi"

    def test_unknown_machine(self):
        with pytest.raises(InvalidMachineError):
            get_machine("definitely-not-registered")

    def test_register_and_overwrite_rules(self):
        name = "test-only-machine"
        try:
            register_machine(name, lambda **kw: mesi(**kw))
            assert name in available_machines()
            with pytest.raises(InvalidMachineError):
                register_machine(name, lambda **kw: mesi(**kw))
            register_machine(name, lambda **kw: msi(**kw), overwrite=True)
            assert get_machine(name).num_states == 3
        finally:
            MACHINE_REGISTRY.pop(name, None)

    def test_registry_contains_paper_machines(self):
        expected = {"mesi", "tcp", "fig2_machine_a", "fig2_machine_b", "shift_register"}
        assert expected.issubset(set(available_machines()))

"""Unit tests for a-priori DFSM reduction (Moore / Hopcroft minimisation)."""

from __future__ import annotations

import pytest

from repro import DFSM, InvalidMachineError, are_equivalent, hopcroft_minimize, minimize, remove_unreachable
from repro.machines import mod_counter


def redundant_parity():
    """A 4-state machine that is really a 2-state parity tracker."""
    machine = DFSM(
        states=["e0", "o0", "e1", "o1"],
        events=["flip", "noop"],
        transitions={
            "e0": {"flip": "o0", "noop": "e1"},
            "o0": {"flip": "e0", "noop": "o1"},
            "e1": {"flip": "o1", "noop": "e0"},
            "o1": {"flip": "e1", "noop": "o0"},
        },
        initial="e0",
        name="redundant-parity",
    )
    outputs = {"e0": "even", "e1": "even", "o0": "odd", "o1": "odd"}
    return machine, outputs


class TestRemoveUnreachable:
    def test_removes_dead_states(self):
        machine = DFSM(
            ["a", "b", "dead"],
            ["x"],
            {"a": {"x": "b"}, "b": {"x": "a"}, "dead": {"x": "dead"}},
            "a",
        )
        assert remove_unreachable(machine).num_states == 2

    def test_noop_for_reachable_machine(self):
        machine = mod_counter(3, 0, events=(0, 1))
        assert remove_unreachable(machine) is machine


class TestMooreMinimize:
    def test_collapses_equivalent_states(self):
        machine, outputs = redundant_parity()
        reduced = minimize(machine, outputs)
        assert reduced.num_states == 2

    def test_minimized_machine_is_equivalent(self):
        machine, outputs = redundant_parity()
        reduced = minimize(machine, outputs)
        reduced_outputs = {
            state: ("even" if any(str(s).startswith("e") for s in (state if isinstance(state, tuple) else (state,))) else "odd")
            for state in reduced.states
        }
        assert are_equivalent(machine, outputs, reduced, reduced_outputs)

    def test_distinct_outputs_prevent_merging(self):
        machine = mod_counter(3, 0, events=(0, 1))
        outputs = {state: state for state in machine.states}
        assert minimize(machine, outputs).num_states == 3

    def test_single_output_collapses_to_one_state(self):
        machine = mod_counter(3, 0, events=(0, 1))
        outputs = {state: "same" for state in machine.states}
        assert minimize(machine, outputs).num_states == 1

    def test_missing_output_raises(self):
        machine = mod_counter(3, 0, events=(0, 1))
        with pytest.raises(InvalidMachineError):
            minimize(machine, {"c0": 1})

    def test_minimization_drops_unreachable_states_first(self):
        machine = DFSM(
            ["a", "b", "dead"],
            ["x"],
            {"a": {"x": "b"}, "b": {"x": "a"}, "dead": {"x": "dead"}},
            "a",
        )
        reduced = minimize(machine, {"a": 0, "b": 1, "dead": 0})
        assert reduced.num_states == 2


class TestHopcroftMinimize:
    def test_agrees_with_moore_on_size(self):
        machine, outputs = redundant_parity()
        assert hopcroft_minimize(machine, outputs).num_states == minimize(machine, outputs).num_states

    def test_agrees_on_counter(self):
        machine = mod_counter(4, 0, events=(0, 1))
        outputs = {"c0": "zero", "c1": "other", "c2": "other", "c3": "other"}
        moore = minimize(machine, outputs)
        hopcroft = hopcroft_minimize(machine, outputs)
        assert moore.num_states == hopcroft.num_states

    def test_result_is_behaviourally_equivalent(self):
        machine, outputs = redundant_parity()
        reduced = hopcroft_minimize(machine, outputs)

        def output_of(state):
            labels = state if isinstance(state, tuple) else (state,)
            return "even" if any(str(s).startswith("e") for s in labels) else "odd"

        reduced_outputs = {state: output_of(state) for state in reduced.states}
        assert are_equivalent(machine, outputs, reduced, reduced_outputs)


class TestEquivalence:
    def test_identical_machines_equivalent(self):
        machine = mod_counter(3, 0, events=(0, 1))
        outputs = {state: state for state in machine.states}
        assert are_equivalent(machine, outputs, machine, outputs)

    def test_different_alphabets_not_equivalent(self):
        a = mod_counter(3, 0, events=(0, 1))
        b = mod_counter(3, "x", events=("x", "y"))
        assert not are_equivalent(a, {s: s for s in a.states}, b, {s: s for s in b.states})

    def test_behaviour_difference_detected(self):
        a = mod_counter(3, 0, events=(0, 1))
        b = mod_counter(4, 0, events=(0, 1))
        outputs_a = {s: ("zero" if s == "c0" else "nonzero") for s in a.states}
        outputs_b = {s: ("zero" if s == "c0" else "nonzero") for s in b.states}
        assert not are_equivalent(a, outputs_a, b, outputs_b)

"""Unit tests for partitions, closure, set representation (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    NotComparableError,
    Partition,
    PartitionError,
    closed_coarsening,
    is_closed_partition,
    machine_from_partition,
    partition_from_machine,
    set_representation,
)
from repro.core.partition import merge_blocks_and_close, quotient_table
from repro.machines import fig2_machine_a, fig2_machine_b, fig3_partition, mesi


class TestPartitionBasics:
    def test_canonical_labels(self):
        assert Partition([5, 5, 7, 5]).labels.tolist() == [0, 0, 1, 0]

    def test_identity_and_single_block(self):
        assert Partition.identity(4).num_blocks == 4
        assert Partition.single_block(4).num_blocks == 1

    def test_from_blocks(self):
        partition = Partition.from_blocks([[0, 2], [1], [3]], 4)
        assert partition.num_blocks == 3
        assert partition.same_block(0, 2)
        assert not partition.same_block(0, 1)

    def test_from_blocks_requires_disjoint_cover(self):
        with pytest.raises(PartitionError):
            Partition.from_blocks([[0, 1], [1, 2]], 3)
        with pytest.raises(PartitionError):
            Partition.from_blocks([[0, 1]], 3)
        with pytest.raises(PartitionError):
            Partition.from_blocks([[0, 5]], 3)

    def test_blocks_roundtrip(self):
        partition = Partition.from_blocks([[0, 3], [1, 2]], 4)
        blocks = partition.blocks()
        assert frozenset({0, 3}) in blocks
        assert frozenset({1, 2}) in blocks
        assert partition.block_members(partition.block_of(1)) == frozenset({1, 2})

    def test_empty_partition_rejected(self):
        with pytest.raises(PartitionError):
            Partition([])

    def test_equality_and_hash(self):
        assert Partition([0, 0, 1]) == Partition([7, 7, 2])
        assert hash(Partition([0, 0, 1])) == hash(Partition([1, 1, 0]))
        assert Partition([0, 0, 1]) != Partition([0, 1, 1])

    def test_merge_elements(self):
        partition = Partition.identity(3).merge_elements(0, 2)
        assert partition.same_block(0, 2)
        assert partition.num_blocks == 2
        assert partition.merge_elements(0, 2) == partition


class TestPartitionOrder:
    def test_paper_order_direction(self):
        finer = Partition.identity(4)
        coarser = Partition.single_block(4)
        # coarser <= finer in the paper's order (bottom <= top).
        assert coarser <= finer
        assert not finer <= coarser
        assert coarser < finer
        assert finer > coarser

    def test_refines(self):
        fine = Partition.from_blocks([[0], [1], [2, 3]], 4)
        coarse = Partition.from_blocks([[0, 1], [2, 3]], 4)
        assert fine.refines(coarse)
        assert not coarse.refines(fine)
        assert coarse.is_coarsening_of(fine)

    def test_incomparable(self):
        p = Partition.from_blocks([[0, 1], [2], [3]], 4)
        q = Partition.from_blocks([[0], [1], [2, 3]], 4)
        assert not p <= q
        assert not q <= p
        assert not p.is_comparable_to(q)

    def test_mismatched_sizes_raise(self):
        with pytest.raises(PartitionError):
            Partition.identity(3).refines(Partition.identity(4))

    def test_join_is_common_refinement(self):
        p = Partition.from_blocks([[0, 1], [2, 3]], 4)
        q = Partition.from_blocks([[0, 2], [1, 3]], 4)
        join = p.join(q)
        assert join == Partition.identity(4)
        # Join is an upper bound of both.
        assert p <= join and q <= join

    def test_meet_is_transitive_union(self):
        p = Partition.from_blocks([[0, 1], [2], [3]], 4)
        q = Partition.from_blocks([[0], [1, 2], [3]], 4)
        meet = p.meet(q)
        assert meet == Partition.from_blocks([[0, 1, 2], [3]], 4)
        assert meet <= p and meet <= q

    def test_join_meet_with_extremes(self):
        p = Partition.from_blocks([[0, 1], [2, 3]], 4)
        top = Partition.identity(4)
        bottom = Partition.single_block(4)
        assert p.join(top) == top
        assert p.meet(bottom) == bottom
        assert p.join(bottom) == p
        assert p.meet(top) == p


class TestClosure:
    def test_component_partitions_are_closed(self, fig2_product):
        top = fig2_product.machine
        for component in range(2):
            partition = Partition(fig2_product.projection(component))
            assert is_closed_partition(top, partition)

    def test_non_closed_partition_detected(self, fig2_top):
        # Putting t1 (=(a1,b1)) and the initial state together is not closed.
        idx = {fig2_top.state_index(s) for s in [("a0", "b0"), ("a1", "b1")]}
        partition = Partition.from_blocks(
            [list(idx)] + [[i] for i in range(4) if i not in idx], 4
        )
        assert not is_closed_partition(fig2_top, partition)

    def test_closed_coarsening_returns_closed(self, fig2_top):
        merged = Partition.identity(4).merge_elements(0, 1)
        closed = closed_coarsening(fig2_top, merged)
        assert is_closed_partition(fig2_top, closed)
        assert closed <= merged

    def test_closed_coarsening_of_closed_partition_is_identity_operation(self, fig2_top, fig2_product):
        partition = Partition(fig2_product.projection(0))
        assert closed_coarsening(fig2_top, partition) == partition

    def test_closure_reaches_bottom_when_forced(self, fig2_top):
        # Merging t1 with t3 (=(a0,b2)) forces everything together except t0.
        i_t1 = fig2_top.state_index(("a1", "b1"))
        i_t3 = fig2_top.state_index(("a0", "b2"))
        closed = closed_coarsening(fig2_top, Partition.identity(4).merge_elements(i_t1, i_t3))
        assert is_closed_partition(fig2_top, closed)
        assert closed.num_blocks < 4

    def test_size_mismatch_raises(self, fig2_top):
        with pytest.raises(PartitionError):
            closed_coarsening(fig2_top, Partition.identity(7))
        with pytest.raises(PartitionError):
            is_closed_partition(fig2_top, Partition.identity(7))

    def test_quotient_table_shape_and_consistency(self, fig2_top):
        partition = fig3_partition("M1")
        table = quotient_table(fig2_top, partition)
        assert table.shape == (partition.num_blocks, fig2_top.num_events)
        # Quotient transitions agree with the original machine.
        labels = partition.labels
        for state in range(fig2_top.num_states):
            for ei in range(fig2_top.num_events):
                successor = int(fig2_top.transition_table[state, ei])
                assert table[labels[state], ei] == labels[successor]

    def test_merge_blocks_and_close_matches_closed_coarsening(self, fig2_top):
        partition = Partition.identity(4)
        quotient = quotient_table(fig2_top, partition)
        for a in range(4):
            for b in range(a + 1, 4):
                fast = Partition(merge_blocks_and_close(quotient, a, b)[partition.labels])
                slow = closed_coarsening(fig2_top, partition.merge_elements(a, b))
                assert fast == slow


class TestAlgorithm1:
    def test_set_representation_of_a_matches_fig5(self, fig2_top, machine_a):
        representation = set_representation(fig2_top, machine_a)
        assert representation["a0"] == frozenset({("a0", "b0"), ("a0", "b2")})
        assert representation["a1"] == frozenset({("a1", "b1")})
        assert representation["a2"] == frozenset({("a2", "b2")})

    def test_set_representation_of_b(self, fig2_top, machine_b):
        representation = set_representation(fig2_top, machine_b)
        assert representation["b0"] == frozenset({("a0", "b0")})
        assert representation["b2"] == frozenset({("a2", "b2"), ("a0", "b2")})

    def test_partition_from_machine_is_closed(self, fig2_top, machine_a):
        partition = partition_from_machine(fig2_top, machine_a)
        assert is_closed_partition(fig2_top, partition)
        assert partition.num_blocks == machine_a.num_states

    def test_unrelated_machine_raises(self, fig2_top):
        # A parity counter of event 0 disagrees with the top's structure:
        # the lockstep walk maps top state (a0, b2) to both parity values.
        from repro.machines import parity_checker

        with pytest.raises(NotComparableError):
            partition_from_machine(fig2_top, parity_checker(0, events=(0, 1)))

    def test_machine_ignoring_all_top_events_collapses_to_one_block(self, fig2_top):
        # MESI shares no events with the top, so under the top's alphabet it
        # never moves: it induces the single-block (bottom) partition.
        partition = partition_from_machine(fig2_top, mesi())
        assert partition.num_blocks == 1

    def test_top_relative_to_itself_is_identity(self, fig2_top):
        partition = partition_from_machine(fig2_top, fig2_top)
        assert partition == Partition.identity(fig2_top.num_states)


class TestQuotientMachine:
    def test_machine_from_partition_roundtrip(self, fig2_top, machine_a):
        partition = partition_from_machine(fig2_top, machine_a)
        quotient = machine_from_partition(fig2_top, partition, name="A-quotient")
        assert quotient.num_states == machine_a.num_states
        # The quotient behaves exactly like A on every input sequence.
        for sequence in ([0, 1, 0], [1, 1, 1, 0], [0] * 5):
            block = quotient.run(sequence)
            assert machine_a.run(sequence) in {s[0] for s in block}

    def test_non_closed_partition_rejected(self, fig2_top):
        bad = Partition.from_blocks([[0, 1], [2], [3]], 4)
        if not is_closed_partition(fig2_top, bad):
            with pytest.raises(PartitionError):
                machine_from_partition(fig2_top, bad)

    def test_single_block_partition_gives_one_state_machine(self, fig2_top):
        quotient = machine_from_partition(fig2_top, Partition.single_block(4))
        assert quotient.num_states == 1

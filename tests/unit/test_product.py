"""Unit tests for the reachable cross product (the top machine)."""

from __future__ import annotations

import pytest

from repro import CrossProduct, InvalidMachineError, UnknownStateError, merged_alphabet, reachable_cross_product
from repro.machines import fig1_counter_a, fig1_counter_b, fig2_machine_a, fig2_machine_b, mesi, tcp


class TestMergedAlphabet:
    def test_union_preserves_first_appearance_order(self):
        a, b = fig2_machine_a(), mesi()
        merged = merged_alphabet([a, b])
        assert merged[: a.num_events] == a.events
        assert set(merged) == set(a.events) | set(b.events)

    def test_duplicate_events_not_repeated(self):
        a, b = fig2_machine_a(), fig2_machine_b()
        assert merged_alphabet([a, b]) == (0, 1)


class TestFig2Product:
    def test_reachable_size_is_four(self, fig2_product):
        # The full product has 9 states; only 4 are reachable (Fig. 2(iii)).
        assert fig2_product.num_states == 4

    def test_state_tuples_match_paper(self, fig2_product):
        expected = {("a0", "b0"), ("a1", "b1"), ("a2", "b2"), ("a0", "b2")}
        assert set(fig2_product.state_tuples()) == expected

    def test_initial_state_is_tuple_of_initials(self, fig2_product):
        assert fig2_product.machine.initial == ("a0", "b0")

    def test_projection_recovers_component_state(self, fig2_product):
        top = fig2_product.machine
        for tuple_state in fig2_product.state_tuples():
            index = fig2_product.index_of(tuple_state)
            assert fig2_product.project_state(tuple_state, 0) == tuple_state[0]
            assert fig2_product.project_state(tuple_state, 1) == tuple_state[1]
            assert fig2_product.state_tuple(index) == tuple_state

    def test_projection_array_shape(self, fig2_product):
        assert fig2_product.projections().shape == (2, 4)

    def test_projection_out_of_range(self, fig2_product):
        with pytest.raises(IndexError):
            fig2_product.projection(5)

    def test_unknown_tuple_raises(self, fig2_product):
        with pytest.raises(UnknownStateError):
            fig2_product.index_of(("a1", "b0"))

    def test_top_is_less_than_no_machine(self, fig2_product, machine_a):
        # Every component machine is <= the top: the top simulates them.
        top = fig2_product.machine
        sequence = [0, 1, 0, 0, 1, 1, 0]
        final_top = top.run(sequence)
        assert final_top[0] == machine_a.run(sequence)


class TestFig1Product:
    def test_fig1_product_has_nine_states(self, fig1_counters):
        product = CrossProduct(fig1_counters)
        assert product.num_states == 9

    def test_product_simulates_components(self, fig1_counters):
        product = CrossProduct(fig1_counters)
        top = product.machine
        events = [0, 1, 1, 0, 0, 0, 1]
        expected = tuple(machine.run(events) for machine in fig1_counters)
        assert top.run(events) == expected


class TestGeneralProduct:
    def test_single_machine_product_is_isomorphic(self):
        machine = mesi()
        product = CrossProduct([machine])
        assert product.num_states == machine.num_states

    def test_empty_machine_list_rejected(self):
        with pytest.raises(InvalidMachineError):
            CrossProduct([])

    def test_disjoint_alphabets_full_product(self):
        a, b = mesi(), tcp()
        product = CrossProduct([a, b])
        # With disjoint alphabets every pair of reachable component states
        # is reachable in the product.
        assert product.num_states == a.num_states * b.num_states

    def test_convenience_wrapper_returns_dfsm(self):
        top = reachable_cross_product([fig1_counter_a(), fig1_counter_b()], name="R")
        assert top.name == "R"
        assert top.num_states == 9

    def test_product_events_are_union(self):
        a, b = mesi(), tcp()
        product = CrossProduct([a, b])
        assert set(product.machine.events) == set(a.events) | set(b.events)

    def test_product_of_identical_machines_collapses(self):
        a1 = fig1_counter_a()
        a2 = fig1_counter_a().renamed("copy")
        product = CrossProduct([a1, a2])
        # Identical machines stay in lock-step, so the reachable product
        # has only as many states as one copy.
        assert product.num_states == a1.num_states

    def test_component_label_matrix_matches_partitions(self):
        import numpy as np

        product = CrossProduct([mesi(), tcp()])
        matrix = product.component_label_matrix()
        partitions = product.component_partitions()
        assert matrix.shape == (2, product.num_states)
        assert matrix.dtype == np.int32
        for row, partition in zip(matrix, partitions):
            assert np.array_equal(row, partition.labels)
        with pytest.raises(ValueError):
            matrix[0, 0] = 1  # read-only
        assert product.component_label_matrix() is matrix  # cached

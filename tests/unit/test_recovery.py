"""Unit tests for Algorithm 3 (crash and Byzantine recovery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CrossProduct,
    FaultToleranceExceededError,
    RecoveryEngine,
    RecoveryError,
    generate_fusion,
    machine_from_partition,
    recover_top_state,
    vote_counts,
)
from repro.machines import fig3_partition


def _machine(name, product):
    return machine_from_partition(product.machine, fig3_partition(name, product), name=name)


@pytest.fixture
def paper_system(fig2_machines_pair, fig2_product):
    """The system {A, B, M1, M2} used in the paper's recovery examples."""
    backups = [_machine("M1", fig2_product), _machine("M2", fig2_product)]
    engine = RecoveryEngine(fig2_product, backups)
    return fig2_machines_pair, backups, engine, fig2_product


def _block(engine, name, label):
    return engine.block_of(name, label)


class TestVoteCounting:
    def test_vote_counts(self):
        counts = vote_counts([[0, 3], [3], [3]], 4)
        assert counts.tolist() == [1, 0, 0, 3]

    def test_recover_top_state_majority(self):
        index, counts = recover_top_state([[0, 3], [3], [3]], 4)
        assert index == 3
        assert counts[3] == 3

    def test_tie_raises_in_strict_mode(self):
        with pytest.raises(RecoveryError):
            recover_top_state([[0], [1]], 2, strict=True)

    def test_tie_resolved_in_lenient_mode(self):
        index, _ = recover_top_state([[0], [1]], 2, strict=False)
        assert index == 0

    def test_no_observations_raises(self):
        with pytest.raises(RecoveryError):
            recover_top_state([], 4)

    def test_bad_num_states_raises(self):
        with pytest.raises(RecoveryError):
            recover_top_state([[0]], 0)


class TestPaperCrashExample:
    def test_crash_of_b_and_m1(self, paper_system):
        # Section 5.2: B and M1 crash; A reports {t0,t3} and M2 reports {t3};
        # the algorithm recovers t3.
        machines, backups, engine, product = paper_system
        t3 = ("a0", "b2")
        observations = {
            "A": "a0",       # A's block {t0, t3}
            "B": None,        # crashed
            "M1": None,       # crashed
            "M2": frozenset({t3}),
        }
        outcome = engine.recover(observations)
        assert outcome.top_state == t3
        assert set(outcome.crashed) == {"B", "M1"}
        assert outcome.machine_states["B"] == "b2"
        assert outcome.machine_states["M1"] == frozenset({("a0", "b0"), ("a2", "b2")}) or outcome.machine_states["M1"] == frozenset({t3})

    def test_counts_match_paper(self, paper_system):
        machines, backups, engine, product = paper_system
        t3 = ("a0", "b2")
        observations = {"A": "a0", "B": None, "M1": None, "M2": frozenset({t3})}
        outcome = engine.recover(observations)
        t3_index = product.index_of(t3)
        t0_index = product.index_of(("a0", "b0"))
        assert outcome.counts[t3_index] == 2
        assert outcome.counts[t0_index] == 1

    def test_missing_observation_counts_as_crash(self, paper_system):
        machines, backups, engine, product = paper_system
        outcome = engine.recover({"A": "a0", "M2": frozenset({("a0", "b2")})})
        assert set(outcome.crashed) == {"B", "M1"}

    def test_too_many_crashes_detected(self, paper_system):
        machines, backups, engine, product = paper_system
        with pytest.raises(FaultToleranceExceededError):
            engine.recover(
                {"M2": frozenset({("a0", "b2")})},
                expected_max_faults=2,
            )

    def test_all_crashed_raises(self, paper_system):
        _, _, engine, _ = paper_system
        with pytest.raises(RecoveryError):
            engine.recover({})


class TestPaperByzantineExample:
    def test_single_liar_is_outvoted(self, paper_system):
        # Section 5.2: A, B, M2 report blocks containing t0; M1 lies with an
        # incorrect state; the algorithm still recovers t0.
        machines, backups, engine, product = paper_system
        t0 = ("a0", "b0")
        m1_lie = _block(engine, "M1", frozenset({("a1", "b1")}))  # the {t1} block
        observations = {
            "A": "a0",
            "B": "b0",
            "M1": frozenset({("a1", "b1")}),
            "M2": frozenset({t0}),
        }
        outcome = engine.recover_from_byzantine(observations)
        assert outcome.top_state == t0
        assert outcome.suspected_byzantine == ("M1",)

    def test_byzantine_requires_all_reports(self, paper_system):
        _, _, engine, _ = paper_system
        with pytest.raises(RecoveryError):
            engine.recover_from_byzantine({"A": "a0", "B": "b0", "M1": None, "M2": None})


class TestRecoveryEngineApi:
    def test_block_of_unknown_machine(self, paper_system):
        _, _, engine, _ = paper_system
        with pytest.raises(RecoveryError):
            engine.block_of("nope", "a0")

    def test_block_of_unknown_state(self, paper_system):
        _, _, engine, _ = paper_system
        with pytest.raises(RecoveryError):
            engine.block_of("A", "not-a-state")

    def test_observation_for_unknown_machine_rejected(self, paper_system):
        _, _, engine, _ = paper_system
        with pytest.raises(RecoveryError):
            engine.recover({"ghost": "x", "A": "a0"})

    def test_machine_names_order(self, paper_system):
        machines, backups, engine, _ = paper_system
        assert engine.machine_names[:2] == ("A", "B")
        assert engine.num_machines == 4

    def test_duplicate_machine_names_get_suffixes(self, fig1_counters):
        product = CrossProduct(fig1_counters)
        duplicate = fig1_counters[0]
        engine = RecoveryEngine(product, [duplicate])
        assert len(engine.machine_names) == 3
        assert len(set(engine.machine_names)) == 3

    def test_recover_from_crashes_wrapper(self, fig1_counters):
        result = generate_fusion(fig1_counters, f=1)
        engine = RecoveryEngine(result.product, result.backups)
        sequence = [0, 1, 1, 0, 0]
        observations = {m.name: m.run(sequence) for m in result.all_machines}
        observations[fig1_counters[0].name] = None
        outcome = engine.recover_from_crashes(observations, f=1)
        assert outcome.machine_states[fig1_counters[0].name] == fig1_counters[0].run(sequence)


class TestEndToEndRecoveryAcrossWorkloads:
    @pytest.mark.parametrize("crash_target", [0, 1])
    def test_single_crash_recovery_for_any_victim(self, fig1_counters, crash_target):
        result = generate_fusion(fig1_counters, f=1)
        engine = RecoveryEngine(result.product, result.backups)
        rng = np.random.default_rng(crash_target)
        workload = [int(e) for e in rng.integers(0, 2, size=60)]
        observations = {m.name: m.run(workload) for m in result.all_machines}
        victim = fig1_counters[crash_target].name
        truth = observations[victim]
        observations[victim] = None
        outcome = engine.recover(observations)
        assert outcome.machine_states[victim] == truth

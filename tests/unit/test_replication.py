"""Unit tests for the replication baseline."""

from __future__ import annotations

import pytest

from repro import (
    FaultToleranceExceededError,
    RecoveryError,
    ReplicatedSystem,
    replicate,
    replication_backup_count,
    replication_state_space,
)
from repro.machines import fig1_counter_a, fig1_counter_b, mesi, tcp


class TestReplicaGeneration:
    def test_crash_replicas(self):
        machines = [mesi(), tcp()]
        replicas = replicate(machines, f=2)
        assert len(replicas) == 4
        assert {r.name for r in replicas} == {
            "MESI/copy1",
            "MESI/copy2",
            "TCP/copy1",
            "TCP/copy2",
        }

    def test_byzantine_replicas_double(self):
        machines = [mesi()]
        assert len(replicate(machines, f=2, byzantine=True)) == 4

    def test_zero_faults_no_replicas(self):
        assert replicate([mesi()], f=0) == []

    def test_negative_faults_rejected(self):
        with pytest.raises(ValueError):
            replicate([mesi()], f=-1)

    def test_replicas_behave_like_originals(self):
        original = fig1_counter_a()
        replica = replicate([original], 1)[0]
        events = [0, 0, 1, 0]
        assert replica.run(events) == original.run(events)


class TestStateSpaceAccounting:
    def test_backup_count(self):
        assert replication_backup_count(3, 2) == 6
        assert replication_backup_count(3, 2, byzantine=True) == 12
        assert replication_backup_count(100, 1) == 100

    def test_backup_count_validation(self):
        with pytest.raises(ValueError):
            replication_backup_count(-1, 1)

    def test_state_space_formula(self):
        machines = [mesi(), tcp()]  # 4 * 11 = 44
        assert replication_state_space(machines, 1) == 44
        assert replication_state_space(machines, 2) == 44**2
        assert replication_state_space(machines, 0) == 1

    def test_state_space_validation(self):
        with pytest.raises(ValueError):
            replication_state_space([mesi()], -1)


class TestReplicatedSystem:
    def _system(self, f=1, byzantine=False):
        return ReplicatedSystem([fig1_counter_a(), fig1_counter_b()], f, byzantine=byzantine)

    def test_structure(self):
        system = self._system(f=2)
        assert system.num_backups == 4
        assert system.backup_state_space == 81
        assert len(system.instance_names()) == 6

    def test_group_of(self):
        system = self._system()
        assert system.group_of("A(n0 mod3)/copy1") == "A(n0 mod3)"
        assert system.group_of("A(n0 mod3)") == "A(n0 mod3)"
        with pytest.raises(RecoveryError):
            system.group_of("stranger")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedSystem([mesi(), mesi()], 1)

    def test_empty_machine_list_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedSystem([], 1)

    def test_crash_recovery_reads_survivor(self):
        system = self._system(f=1)
        events = [0, 1, 0, 0]
        a, b = system.originals
        observations = {
            "A(n0 mod3)": None,  # primary crashed
            "A(n0 mod3)/copy1": a.run(events),
            "B(n1 mod3)": b.run(events),
            "B(n1 mod3)/copy1": b.run(events),
        }
        outcome = system.recover(observations)
        assert outcome.machine_states["A(n0 mod3)"] == a.run(events)

    def test_whole_group_crash_is_unrecoverable(self):
        system = self._system(f=1)
        observations = {
            "A(n0 mod3)": None,
            "A(n0 mod3)/copy1": None,
            "B(n1 mod3)": "c0",
            "B(n1 mod3)/copy1": "c0",
        }
        with pytest.raises(FaultToleranceExceededError):
            system.recover(observations)

    def test_byzantine_majority(self):
        system = self._system(f=1, byzantine=True)
        observations = {
            "A(n0 mod3)": "c2",       # liar
            "A(n0 mod3)/copy1": "c1",
            "A(n0 mod3)/copy2": "c1",
            "B(n1 mod3)": "c0",
            "B(n1 mod3)/copy1": "c0",
            "B(n1 mod3)/copy2": "c0",
        }
        outcome = system.recover(observations)
        assert outcome.machine_states["A(n0 mod3)"] == "c1"
        assert "A(n0 mod3)" in outcome.suspected_byzantine

    def test_byzantine_tie_raises(self):
        system = self._system(f=1, byzantine=True)
        observations = {
            "A(n0 mod3)": "c2",
            "A(n0 mod3)/copy1": "c1",
            "A(n0 mod3)/copy2": None,
            "B(n1 mod3)": "c0",
            "B(n1 mod3)/copy1": "c0",
            "B(n1 mod3)/copy2": "c0",
        }
        with pytest.raises(RecoveryError):
            system.recover(observations)

    def test_unknown_instance_rejected(self):
        system = self._system()
        with pytest.raises(RecoveryError):
            system.recover({"ghost": "c0"})

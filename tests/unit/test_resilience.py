"""Unit tests for the self-healing layer (:mod:`repro.core.resilience`).

Covers the chaos-spec parser and its seeded determinism, the retry and
watchdog policy read from the environment, the owned-segment registry
behind the ``/dev/shm`` leak check, and the pool/scratch guard rails:
negative worker counts, use-after-close, heal/respawn/degrade.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as PoolTimeoutError
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.exceptions import FusionError
from repro.core.resilience import (
    RECOVERABLE_POOL_ERRORS,
    ChaosSpec,
    EngineFaultKind,
    KNOWN_STAGES,
    ResilienceConfig,
    ResilienceStats,
    assert_no_owned_segments,
    chaos_from_env,
    execute_chaos_fault,
    forget_owned_segment,
    live_owned_segments,
    reap_owned_segments,
    register_owned_segment,
    stage_of,
)
from repro.core.shm import (
    SharedArrayBundle,
    SharedScratch,
    SharedWorkerPool,
    resolve_workers,
)


def _segment_exists(name: str) -> bool:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


# ----------------------------------------------------------------------
# stage vocabulary
# ----------------------------------------------------------------------
class TestStageOf:
    @pytest.mark.parametrize(
        "task_name, stage",
        [
            ("_ledger_leaf_task", "ledger_leaf"),
            ("_merge_sorted_pair_task", "merge_fold"),
            ("_prune_backward_task", "prune_shard"),
            ("_prune_forward_task", "prune_shard"),
            ("_descent_level_task", "closure_batch"),
            ("_explore_keys_task", "bfs_shard"),
        ],
    )
    def test_maps_every_worker_task(self, task_name, stage):
        fn = lambda: None  # noqa: E731 - name is all stage_of reads
        fn.__name__ = task_name
        assert stage_of(fn) == stage
        assert stage in KNOWN_STAGES

    def test_unknown_tasks_fall_back_to_generic_stage(self):
        assert stage_of(sum) == "task"


# ----------------------------------------------------------------------
# ResilienceConfig
# ----------------------------------------------------------------------
class TestResilienceConfig:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUSION_MAX_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_FUSION_TASK_TIMEOUT", raising=False)
        config = ResilienceConfig.from_env()
        assert config.max_retries == 2
        assert config.task_timeout is None

    def test_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_FUSION_TASK_TIMEOUT", "12.5")
        config = ResilienceConfig.from_env()
        assert config.max_retries == 5
        assert config.task_timeout == 12.5

    def test_zero_timeout_disables_watchdog(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION_TASK_TIMEOUT", "0")
        assert ResilienceConfig.from_env().task_timeout is None

    @pytest.mark.parametrize("raw", ["nope", "-1", "2.5"])
    def test_invalid_retries_raise(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FUSION_MAX_RETRIES", raw)
        with pytest.raises(FusionError, match="REPRO_FUSION_MAX_RETRIES"):
            ResilienceConfig.from_env()

    @pytest.mark.parametrize("raw", ["soon", "-0.5"])
    def test_invalid_timeout_raises(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FUSION_TASK_TIMEOUT", raw)
        with pytest.raises(FusionError, match="REPRO_FUSION_TASK_TIMEOUT"):
            ResilienceConfig.from_env()


# ----------------------------------------------------------------------
# ChaosSpec
# ----------------------------------------------------------------------
class TestChaosSpec:
    def test_parse_full_spec(self):
        spec = ChaosSpec.parse(
            "worker_kill=0.2,task_hang=0.1,slow_task=0.3,"
            "stages=ledger_leaf+merge_fold,max=2,seed=7,hang_s=60,slow_s=0.01"
        )
        assert spec.active
        assert spec.injected == 0

    def test_inactive_without_probabilities(self):
        spec = ChaosSpec.parse("seed=3")
        assert not spec.active
        assert spec.draw("ledger_leaf") is None

    def test_zero_probability_is_inactive(self):
        assert not ChaosSpec.parse("worker_kill=0.0").active

    @pytest.mark.parametrize(
        "spec",
        [
            "worker_kill",  # no '='
            "worker_kill=maybe",  # not a float
            "max=few",  # not an int
            "frobnicate=1.0",  # unknown key
            "stages=warp_core",  # unknown stage
            "worker_kill=1.5",  # probability out of range
        ],
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(FusionError):
            ChaosSpec.parse(spec)

    def test_stage_filter_and_budget(self):
        spec = ChaosSpec.parse("worker_kill=1.0,stages=prune_shard,max=1,seed=1")
        assert spec.draw("ledger_leaf") is None  # filtered out
        assert spec.draw("prune_shard") == ("worker_kill", 0.0)
        assert spec.injected == 1
        assert spec.draw("prune_shard") is None  # budget spent

    def test_draws_are_seed_deterministic(self):
        stages = ["ledger_leaf", "prune_shard", "bfs_shard", "merge_fold"] * 8
        draws = []
        for _ in range(2):
            spec = ChaosSpec.parse("worker_kill=0.3,task_hang=0.2,seed=42")
            draws.append([spec.draw(stage) for stage in stages])
        assert draws[0] == draws[1]
        assert any(fault is not None for fault in draws[0])

    def test_different_seeds_differ(self):
        stages = ["ledger_leaf"] * 64
        a = ChaosSpec.parse("worker_kill=0.5,seed=1")
        b = ChaosSpec.parse("worker_kill=0.5,seed=2")
        assert [a.draw(s) for s in stages] != [b.draw(s) for s in stages]

    def test_hang_and_slow_durations_travel_with_the_fault(self):
        spec = ChaosSpec.parse("task_hang=1.0,max=1,seed=0,hang_s=123.0")
        assert spec.draw("ledger_leaf") == ("task_hang", 123.0)
        spec = ChaosSpec.parse("slow_task=1.0,max=1,seed=0,slow_s=0.25")
        assert spec.draw("ledger_leaf") == ("slow_task", 0.25)

    def test_chaos_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert chaos_from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "worker_kill=0.0")
        assert chaos_from_env() is None  # parses but inactive
        monkeypatch.setenv("REPRO_CHAOS", "worker_kill=0.5,seed=3")
        assert chaos_from_env() is not None

    def test_execute_slow_fault_sleeps_and_returns(self):
        started = time.monotonic()
        execute_chaos_fault((EngineFaultKind.SLOW_TASK.value, 0.01))
        assert time.monotonic() - started >= 0.01


# ----------------------------------------------------------------------
# ResilienceStats
# ----------------------------------------------------------------------
class TestResilienceStats:
    def test_fault_classification(self):
        stats = ResilienceStats()
        stats.note_fault(BrokenExecutor("worker died"))
        stats.note_fault(PoolTimeoutError())
        assert stats.crashes == 1
        assert stats.timeouts == 1

    def test_degradation_records_the_stage(self):
        stats = ResilienceStats()
        stats.note_degraded("closure_batch")
        assert stats.degraded == 1
        assert stats.degraded_stages == ["closure_batch"]

    def test_counters_match_the_benchmark_schema(self):
        assert sorted(ResilienceStats().as_counters()) == [
            "chaos", "crashes", "degraded", "rebuilds",
            "republished", "retries", "timeouts",
        ]

    def test_recoverable_errors_are_exactly_infrastructure_faults(self):
        assert BrokenExecutor in RECOVERABLE_POOL_ERRORS
        assert PoolTimeoutError in RECOVERABLE_POOL_ERRORS
        assert not any(issubclass(ValueError, t) for t in RECOVERABLE_POOL_ERRORS)


# ----------------------------------------------------------------------
# Owned-segment registry
# ----------------------------------------------------------------------
class TestOwnedSegmentRegistry:
    def test_register_live_forget_round_trip(self):
        register_owned_segment("repro-test-registry-entry")
        try:
            assert "repro-test-registry-entry" in live_owned_segments()
            with pytest.raises(FusionError, match="stranded"):
                assert_no_owned_segments()
        finally:
            forget_owned_segment("repro-test-registry-entry")
        assert "repro-test-registry-entry" not in live_owned_segments()

    def test_reap_unlinks_registered_segments(self):
        segment = shared_memory.SharedMemory(create=True, size=64)
        register_owned_segment(segment.name)
        try:
            reaped = reap_owned_segments()
            assert segment.name in reaped
            assert not _segment_exists(segment.name)
            assert segment.name not in live_owned_segments()
        finally:
            segment.close()

    def test_bundle_lifecycle_keeps_registry_clean(self):
        bundle = SharedArrayBundle.create({"xs": np.arange(8)})
        name = bundle.meta["segment"]
        assert name in live_owned_segments()
        bundle.close()
        assert name not in live_owned_segments()
        assert_no_owned_segments()


# ----------------------------------------------------------------------
# Worker-count validation (satellite: no silent clamping)
# ----------------------------------------------------------------------
class TestResolveWorkersValidation:
    def test_negative_argument_raises(self):
        with pytest.raises(FusionError, match="worker count must be >= 0"):
            resolve_workers(-1)

    def test_negative_environment_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION_WORKERS", "-4")
        with pytest.raises(FusionError, match="worker count must be >= 0"):
            resolve_workers()

    def test_serial_counts_pass_through(self):
        assert resolve_workers(0) == 0
        assert resolve_workers(1) == 1

    def test_large_counts_are_capped(self):
        assert resolve_workers(10_000) == 16


# ----------------------------------------------------------------------
# Use-after-close guards (satellite)
# ----------------------------------------------------------------------
class TestUseAfterCloseGuards:
    def test_publish_on_closed_pool_raises(self):
        pool = SharedWorkerPool(max_workers=2)
        pool.close()
        with pytest.raises(FusionError, match="closed SharedWorkerPool"):
            pool.publish({"xs": np.arange(4)})

    def test_heal_on_closed_pool_raises(self):
        pool = SharedWorkerPool(max_workers=2)
        pool.close()
        with pytest.raises(FusionError, match="cannot heal"):
            pool.heal()

    def test_submit_on_degraded_pool_raises(self):
        with SharedWorkerPool(max_workers=2) as pool:
            pool.degrade("prune_shard")
            with pytest.raises(FusionError, match="degraded SharedWorkerPool"):
                pool.submit(sum, (1, 2))

    def test_write_on_closed_scratch_raises(self):
        with SharedWorkerPool(max_workers=2) as pool:
            scratch = SharedScratch(pool)
            scratch.write(np.arange(4))
            scratch.close()
            with pytest.raises(FusionError, match="closed SharedScratch"):
                scratch.write(np.arange(4))


# ----------------------------------------------------------------------
# Respawn / heal / degrade mechanics
# ----------------------------------------------------------------------
class TestRespawnAndHeal:
    def test_respawn_preserves_content_under_a_fresh_name(self):
        bundle = SharedArrayBundle.create({"xs": np.arange(16), "ys": np.ones(3)})
        try:
            old_name = bundle.meta["segment"]
            expected = {k: v.copy() for k, v in bundle.arrays.items()}
            bundle.respawn()
            new_name = bundle.meta["segment"]
            assert new_name != old_name
            assert not _segment_exists(old_name)
            assert _segment_exists(new_name)
            for key, value in expected.items():
                np.testing.assert_array_equal(bundle.arrays[key], value)
        finally:
            bundle.close()
        assert_no_owned_segments()

    def test_respawn_of_closed_bundle_raises(self):
        bundle = SharedArrayBundle.create({"xs": np.arange(4)})
        bundle.close()
        with pytest.raises(FusionError):
            bundle.respawn()

    def test_attached_side_cannot_respawn(self):
        bundle = SharedArrayBundle.create({"xs": np.arange(4)})
        try:
            remote = SharedArrayBundle.attach(bundle.meta)
            with pytest.raises(FusionError):
                remote.respawn()
            remote.close()
        finally:
            bundle.close()

    def test_heal_counts_rebuilds_and_republished(self):
        with SharedWorkerPool(max_workers=2) as pool:
            pool.publish({"xs": np.arange(4)})
            pool.publish({"ys": np.arange(8)})
            pool.heal()
            assert pool.resilience.rebuilds == 1
            assert pool.resilience.republished == 2
        assert_no_owned_segments()

    def test_degrade_is_idempotent_and_flips_usable(self):
        with SharedWorkerPool(max_workers=2) as pool:
            assert pool.usable
            pool.degrade("merge_fold")
            pool.degrade("merge_fold")
            assert not pool.usable
            assert pool.resilience.degraded == 1
            assert pool.resilience.degraded_stages == ["merge_fold"]

    def test_run_wave_on_degraded_pool_takes_the_fallback(self):
        with SharedWorkerPool(max_workers=2) as pool:
            pool.degrade("ledger_leaf")

            def never_called():
                raise AssertionError("degraded pool must not submit")

            assert pool.run_wave("ledger_leaf", never_called, lambda: "serial") == "serial"
            assert pool.run_wave("ledger_leaf", never_called) is None

"""Unit tests for the vectorized streaming runtime and batched recovery.

The equivalence *properties* live in ``tests/property``; this file pins
the unit-level contract — constructor and argument validation, fault
injection semantics, the env knobs, shared-memory hygiene — and the
chaos coverage of the ``runtime_step`` pool stage (referenced by
``tests/property/test_resilience_chaos.py``, which restricts its own
kill matrix to the fusion stages).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.runtime as runtime_module
from repro.core.exceptions import RecoveryError, SimulationError
from repro.core.fusion import generate_fusion
from repro.core.resilience import live_owned_segments
from repro.core.runtime import (
    BYZANTINE,
    CRASHED,
    HEALTHY,
    BatchRecovery,
    VectorizedRuntime,
    recover_fleet,
)
from repro.machines import mod_counter


def _counters(size=3, modulus=3):
    events = tuple(range(size))
    return [
        mod_counter(modulus, count_event=e, events=events, name="c%d" % e)
        for e in events
    ]


class TestConstruction:
    def test_needs_machines(self):
        with pytest.raises(SimulationError):
            VectorizedRuntime([])

    def test_needs_positive_instances(self):
        with pytest.raises(SimulationError):
            VectorizedRuntime(_counters(), 0)

    def test_initial_states_and_shapes(self):
        with VectorizedRuntime(_counters(), 5, workers=1) as runtime:
            assert runtime.num_machines == 3
            assert runtime.num_instances == 5
            assert runtime.alphabet == (0, 1, 2)
            assert runtime.true_states.shape == (3, 5)
            assert not runtime.true_states.any()
            assert not runtime.statuses.any()
            assert runtime.is_consistent()

    def test_matrices_are_copies(self):
        with VectorizedRuntime(_counters(), 2, workers=1) as runtime:
            runtime.visible_states[0, 0] = 99
            assert runtime.visible_states[0, 0] == 0


class TestArgumentValidation:
    def test_encode_events_rejects_unknown_labels(self):
        with VectorizedRuntime(_counters(), 1, workers=1) as runtime:
            with pytest.raises(SimulationError, match="unknown event"):
                runtime.encode_events([0, "nope"])

    def test_event_matrix_shape_checked(self):
        with VectorizedRuntime(_counters(), 4, workers=1) as runtime:
            with pytest.raises(SimulationError, match="event matrix"):
                runtime.apply_event_matrix(np.zeros((2, 3), dtype=np.int64))

    def test_event_matrix_index_range_checked(self):
        with VectorizedRuntime(_counters(), 2, workers=1) as runtime:
            with pytest.raises(SimulationError, match="event index out of range"):
                runtime.apply_event_matrix(np.full((1, 2), 7))

    def test_instance_selector_range_checked(self):
        with VectorizedRuntime(_counters(), 2, workers=1) as runtime:
            with pytest.raises(SimulationError, match="instance index"):
                runtime.select_instances([2])

    def test_restore_matrix_shape_checked(self):
        with VectorizedRuntime(_counters(), 2, workers=1) as runtime:
            with pytest.raises(SimulationError, match="restore matrix"):
                runtime.restore_matrix(np.zeros((1, 2), dtype=np.int64))

    def test_restore_rejects_unknown_state_index(self):
        with VectorizedRuntime(_counters(), 2, workers=1) as runtime:
            with pytest.raises(SimulationError, match="unknown state"):
                runtime.restore_instances(0, [17], [0])


class TestFaultSemantics:
    def test_crash_freezes_visible_not_true(self):
        with VectorizedRuntime(_counters(), 3, workers=1) as runtime:
            runtime.apply_stream([0])
            runtime.crash_instances(0, [1])
            runtime.apply_stream([0])
            assert runtime.visible_states[0, 1] == -1
            assert runtime.true_states[0, 1] == 2
            assert runtime.statuses[0, 1] == CRASHED
            # Untouched instances keep stepping.
            assert runtime.visible_states[0, 0] == 2

    def test_corrupted_machine_keeps_stepping(self):
        with VectorizedRuntime(_counters(), 1, workers=1) as runtime:
            chosen = runtime.corrupt_instances(
                0, [0], rng=np.random.default_rng(5)
            )
            assert chosen[0] != 0
            assert runtime.statuses[0, 0] == BYZANTINE
            runtime.apply_stream([0])
            assert runtime.visible_states[0, 0] == (chosen[0] + 1) % 3

    def test_cannot_corrupt_crashed_instance(self):
        with VectorizedRuntime(_counters(), 1, workers=1) as runtime:
            runtime.crash_instances(0)
            with pytest.raises(SimulationError, match="crashed"):
                runtime.corrupt_instances(0)

    def test_cannot_corrupt_single_state_machine(self):
        single = mod_counter(1, count_event=0, events=(0,), name="solo")
        with VectorizedRuntime([single], 1, workers=1) as runtime:
            with pytest.raises(SimulationError, match="single state"):
                runtime.corrupt_instances(0)

    def test_explicit_corruption_targets_validated(self):
        with VectorizedRuntime(_counters(), 2, workers=1) as runtime:
            with pytest.raises(SimulationError, match="per instance"):
                runtime.corrupt_instances(0, [0, 1], targets=[1])
            with pytest.raises(SimulationError, match="different valid state"):
                runtime.corrupt_instances(0, [0], targets=[0])  # == current
            runtime.corrupt_instances(0, [0, 1], targets=[1, 2])
            assert list(runtime.visible_states[0]) == [1, 2]

    def test_restore_heals_status(self):
        with VectorizedRuntime(_counters(), 2, workers=1) as runtime:
            runtime.crash_instances(1)
            runtime.restore_instances(1, [0], instances=None)
            assert (runtime.statuses[1] == HEALTHY).all()
            assert runtime.is_consistent()

    def test_consistent_instances_is_per_column(self):
        with VectorizedRuntime(_counters(), 3, workers=1) as runtime:
            runtime.crash_instances(2, [1])
            assert list(runtime.consistent_instances()) == [True, False, True]


class TestEnvKnobs:
    def test_pool_min_instances_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIME_POOL_MIN_INSTANCES", "123")
        assert runtime_module._pool_min_instances() == 123

    def test_pool_min_instances_env_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIME_POOL_MIN_INSTANCES", "lots")
        with pytest.raises(SimulationError, match="must be an integer"):
            runtime_module._pool_min_instances()

    def test_small_fleets_never_route_to_the_pool(self):
        # workers=1 resolves to no pool at all; the serial path is the
        # only route regardless of the threshold.
        with VectorizedRuntime(_counters(), 2, workers=1) as runtime:
            assert not runtime._pooled_route()


class TestBatchRecoveryValidation:
    @pytest.fixture(scope="class")
    def fusion(self):
        return generate_fusion(_counters(), f=1)

    @pytest.fixture(scope="class")
    def recovery(self, fusion):
        return BatchRecovery(fusion.product, fusion.backups)

    def test_reported_shape_checked(self, recovery):
        with pytest.raises(RecoveryError, match="reported matrix"):
            recovery.recover_batch(np.zeros((2, 1), dtype=np.int64))

    def test_reported_state_range_checked(self, recovery):
        reported = np.zeros((recovery.num_machines, 1), dtype=np.int64)
        reported[0, 0] = 99
        with pytest.raises(RecoveryError, match="cannot be in state index"):
            recovery.recover_batch(reported)

    def test_all_crashed_instance_rejected(self, recovery):
        reported = np.full((recovery.num_machines, 2), -1, dtype=np.int64)
        reported[:, 0] = 0
        with pytest.raises(RecoveryError, match="every machine crashed"):
            recovery.recover_batch(reported)

    def test_one_dimensional_reports_are_one_instance(self, recovery):
        outcome = recovery.recover_batch(
            np.zeros(recovery.num_machines, dtype=np.int64)
        )
        assert outcome.num_instances == 1
        assert outcome.top_indices[0] == 0

    def test_recover_fleet_checks_machine_count(self, recovery):
        with VectorizedRuntime(_counters(2), 1, workers=1) as runtime:
            with pytest.raises(RecoveryError, match="machines"):
                recover_fleet(runtime, recovery)

    def test_recover_fleet_subset_heals_only_selected(self, fusion, recovery):
        with VectorizedRuntime(fusion.all_machines, 4, workers=1) as runtime:
            runtime.apply_stream([0, 1])
            runtime.crash_instances(0, [1, 3])
            recover_fleet(runtime, recovery, instances=[1], expected_max_faults=1)
            assert list(runtime.consistent_instances()) == [
                True, True, True, False,
            ]


class TestRuntimeChaos:
    """Chaos coverage for the ``runtime_step`` pool stage.

    The fusion-stage kill matrix lives in
    ``tests/property/test_resilience_chaos.py``; this class completes it
    for the streaming runtime: a seeded SIGKILL lands on a runtime
    gather wave, the pool heals and replays, and the fleet's state
    matrices stay byte-identical to a serial run — with nothing left in
    ``/dev/shm``.
    """

    def _fleet_states(self, monkeypatch, workers, chaos=""):
        monkeypatch.setattr(runtime_module, "_RUNTIME_POOL_MIN_INSTANCES", 1)
        if chaos:
            monkeypatch.setenv("REPRO_CHAOS", chaos)
        else:
            monkeypatch.delenv("REPRO_CHAOS", raising=False)
        machines = _counters(4)
        generator = np.random.default_rng(42)
        matrix = generator.integers(0, 4, size=(10, 31))
        stream = list(generator.integers(0, 4, size=8))
        with VectorizedRuntime(machines, 31, workers=workers) as runtime:
            runtime.apply_event_matrix(matrix)
            runtime.crash_instances(1, [2, 9])
            runtime.apply_stream(stream)
            stats = (
                dict(vars(runtime._pool.resilience))
                if runtime._pool is not None
                else {}
            )
            return (
                runtime.true_states,
                runtime.visible_states,
                runtime.statuses,
                stats,
            )

    def test_worker_kill_in_runtime_step_heals_byte_identical(self, monkeypatch):
        serial = self._fleet_states(monkeypatch, workers=1)
        chaotic = self._fleet_states(
            monkeypatch,
            workers=2,
            chaos="worker_kill=1.0,stages=runtime_step,max=1,seed=7",
        )
        for ours, theirs in zip(chaotic[:3], serial[:3]):
            assert np.array_equal(ours, theirs)
        stats = chaotic[3]
        assert stats["crashes"] >= 1, "the chaos kill never landed"
        assert stats["rebuilds"] >= 1 and stats["retries"] >= 1
        assert stats["degraded"] == 0, "a single kill must heal, not degrade"
        assert live_owned_segments() == ()

    def test_unbounded_kills_degrade_to_serial_stepping(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION_MAX_RETRIES", "1")
        serial = self._fleet_states(monkeypatch, workers=1)
        chaotic = self._fleet_states(
            monkeypatch,
            workers=2,
            chaos="worker_kill=1.0,stages=runtime_step,seed=5",
        )
        for ours, theirs in zip(chaotic[:3], serial[:3]):
            assert np.array_equal(ours, theirs)
        assert chaotic[3]["degraded"] >= 1
        assert live_owned_segments() == ()


class TestLifecycle:
    def test_close_is_idempotent_and_leak_free(self):
        runtime = VectorizedRuntime(_counters(), 2, workers=1)
        runtime.apply_stream([0, 1, 2])
        runtime.close()
        runtime.close()
        assert live_owned_segments() == ()

    def test_borrowed_pool_survives_runtime_close(self, monkeypatch):
        monkeypatch.setattr(runtime_module, "_RUNTIME_POOL_MIN_INSTANCES", 1)
        from repro.core.shm import SharedWorkerPool

        pool = SharedWorkerPool(2)
        try:
            with VectorizedRuntime(_counters(), 9, pool=pool) as runtime:
                runtime.apply_stream([0, 1])
            assert pool.usable
        finally:
            pool.close()
        assert live_owned_segments() == ()

"""Unit tests for the shared-memory layer (``repro.core.shm``).

The property suite establishes that parallel and serial engines compute
identical results; these tests pin the *lifecycle* contracts instead —
bundles round-trip arrays, attached views are read-only, segments are
unlinked from ``/dev/shm`` on every exit path (normal close, context
manager with an exception in flight, garbage collection), and the pool
refuses use-after-close instead of leaking.
"""

from __future__ import annotations

import gc
import pickle

import numpy as np
import pytest

from repro.core.exceptions import FusionError
from repro.core.shm import (
    SharedArrayBundle,
    SharedScratch,
    SharedWorkerPool,
    attached_arrays,
    resolve_workers,
)


def _segment_exists(name: str) -> bool:
    """True while a POSIX shared-memory segment with this name is linked."""
    from multiprocessing import shared_memory

    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


class TestSharedArrayBundle:
    def test_round_trip_and_layout(self):
        arrays = {
            "table": np.arange(12, dtype=np.int64).reshape(3, 4),
            "labels": np.array([2, 0, 1], dtype=np.int32),
        }
        with SharedArrayBundle.create(arrays) as bundle:
            attached = SharedArrayBundle.attach(bundle.meta)
            try:
                for name, array in arrays.items():
                    assert np.array_equal(attached.arrays[name], array)
                    assert attached.arrays[name].dtype == array.dtype
            finally:
                attached.close()

    def test_attached_views_are_read_only(self):
        with SharedArrayBundle.create({"xs": np.zeros(4)}) as bundle:
            attached = SharedArrayBundle.attach(bundle.meta)
            try:
                with pytest.raises(ValueError):
                    attached.arrays["xs"][0] = 1.0
            finally:
                attached.close()

    def test_owner_writes_are_visible_through_attachments(self):
        """Scratch regions rewritten by the owner need no re-attach."""
        with SharedArrayBundle.create({"xs": np.zeros(4, dtype=np.int64)}) as bundle:
            attached = SharedArrayBundle.attach(bundle.meta)
            try:
                bundle.arrays["xs"][...] = np.array([5, 6, 7, 8])
                assert attached.arrays["xs"].tolist() == [5, 6, 7, 8]
            finally:
                attached.close()

    def test_meta_is_picklable(self):
        with SharedArrayBundle.create({"xs": np.arange(3)}) as bundle:
            meta = pickle.loads(pickle.dumps(bundle.meta))
            attached = SharedArrayBundle.attach(meta)
            try:
                assert attached.arrays["xs"].tolist() == [0, 1, 2]
            finally:
                attached.close()

    def test_close_unlinks_segment(self):
        bundle = SharedArrayBundle.create({"xs": np.arange(3)})
        name = bundle.name
        assert _segment_exists(name)
        bundle.close()
        assert not _segment_exists(name)
        bundle.close()  # idempotent

    def test_context_manager_unlinks_on_error(self):
        """The satellite requirement: no /dev/shm leak on error paths."""
        name = None
        with pytest.raises(RuntimeError):
            with SharedArrayBundle.create({"xs": np.arange(3)}) as bundle:
                name = bundle.name
                assert _segment_exists(name)
                raise RuntimeError("interrupted mid-use")
        assert name is not None and not _segment_exists(name)

    def test_garbage_collection_backstop_unlinks(self):
        bundle = SharedArrayBundle.create({"xs": np.arange(3)})
        name = bundle.name
        del bundle
        gc.collect()
        assert not _segment_exists(name)


class TestSharedWorkerPool:
    def test_rejects_serial_worker_counts(self):
        for count in (0, 1, -2):
            with pytest.raises(FusionError):
                SharedWorkerPool(count)

    def test_close_unlinks_published_bundles(self):
        pool = SharedWorkerPool(2)
        bundle = pool.publish({"xs": np.arange(5)})
        name = bundle.name
        assert _segment_exists(name)
        pool.close()
        assert not _segment_exists(name)
        assert not pool.usable

    def test_use_after_close_is_refused(self):
        pool = SharedWorkerPool(2)
        pool.close()
        with pytest.raises(FusionError):
            pool.publish({"xs": np.arange(2)})
        with pytest.raises(FusionError):
            pool.submit(len, ())
        pool.close()  # idempotent

    def test_retire_unlinks_early(self):
        with SharedWorkerPool(2) as pool:
            bundle = pool.publish({"xs": np.arange(2)})
            name = bundle.name
            pool.retire(bundle)
            assert not _segment_exists(name)

    def test_context_manager_closes_on_error(self):
        name = None
        with pytest.raises(RuntimeError):
            with SharedWorkerPool(2) as pool:
                name = pool.publish({"xs": np.arange(2)}).name
                raise RuntimeError("interrupted mid-fusion")
        assert name is not None and not _segment_exists(name)

    def test_submit_round_trip(self):
        """The lazily-spawned executor really runs tasks."""
        with SharedWorkerPool(2) as pool:
            assert pool.submit(sum, (1, 2, 3)).result() == 6


class TestSharedScratch:
    def test_write_read_and_grow_in_place(self):
        with SharedWorkerPool(2) as pool:
            scratch = SharedScratch(pool)
            meta, length = scratch.write(np.arange(4, dtype=np.int64))
            first_name = meta["segment"]
            assert length == 4
            assert attached_arrays(meta)["data"][:length].tolist() == [0, 1, 2, 3]
            # A smaller payload reuses the same segment...
            meta2, length2 = scratch.write(np.array([7], dtype=np.int64))
            assert meta2["segment"] == first_name and length2 == 1
            # ...while outgrowing the capacity recreates it with headroom.
            meta3, length3 = scratch.write(np.arange(100, dtype=np.int64))
            assert meta3["segment"] != first_name
            assert length3 == 100 and scratch.capacity >= 100
            scratch.close()

    def test_first_write_may_be_empty(self):
        with SharedWorkerPool(2) as pool:
            scratch = SharedScratch(pool)
            meta, length = scratch.write(np.empty(0, dtype=np.int64))
            assert length == 0
            assert attached_arrays(meta)["data"][:length].size == 0
            scratch.close()

    def test_close_unlinks_backing_segment(self):
        with SharedWorkerPool(2) as pool:
            scratch = SharedScratch(pool)
            meta, _length = scratch.write(np.arange(3, dtype=np.int64))
            assert _segment_exists(meta["segment"])
            scratch.close()
            assert not _segment_exists(meta["segment"])
            scratch.close()  # idempotent


def _two_bundle_task(first_meta, second_meta):
    """Views of the first bundle must stay valid after attaching the
    second — even when the second attach evicts the first from the
    worker's cache (the PR 5 regression: an immediate unmap let the OS
    reuse the address range and the live views silently read the wrong
    segment's bytes)."""
    arrays = attached_arrays(first_meta)
    payload = arrays["payload"]
    before = int(payload.sum())
    _other = attached_arrays(second_meta)["payload"]
    after = int(payload.sum())
    return before, after


class TestAttachCacheEvictionSafety:
    def test_views_survive_mid_task_eviction(self, monkeypatch):
        import repro.core.shm as shm_module

        # Cache of 1: every second attach evicts the first bundle while
        # the task still holds views of it.
        monkeypatch.setattr(shm_module, "_ATTACH_CACHE_LIMIT", 1)
        with SharedWorkerPool(2) as pool:
            first = pool.publish({"payload": np.arange(1000, dtype=np.int64)})
            expected = int(np.arange(1000).sum())
            for round_index in range(6):
                # Fresh second bundle per round: constant segment churn.
                second = pool.publish(
                    {"payload": np.full(2000, round_index, dtype=np.int64)}
                )
                before, after = pool.submit(
                    _two_bundle_task, first.meta, second.meta
                ).result()
                assert before == expected, round_index
                assert after == expected, round_index
                pool.retire(second)

    def test_cache_is_lru_not_fifo(self):
        import repro.core.shm as shm_module

        bundles = [
            SharedArrayBundle.create({"payload": np.arange(3, dtype=np.int64)})
            for _ in range(3)
        ]
        saved_cache = dict(shm_module._ATTACH_CACHE)
        shm_module._ATTACH_CACHE.clear()
        try:
            for bundle in bundles:
                attached_arrays(bundle.meta)
            attached_arrays(bundles[0].meta)  # touch: most recently used
            order = list(shm_module._ATTACH_CACHE)
            assert order[-1] == bundles[0].name
        finally:
            shm_module._drain_pending_closes()
            for name in list(shm_module._ATTACH_CACHE):
                if name not in saved_cache:
                    shm_module._ATTACH_CACHE.pop(name).close()
            shm_module._ATTACH_CACHE.update(saved_cache)
            for bundle in bundles:
                bundle.close()


class TestResolveWorkersReExport:
    def test_fusion_re_export_is_the_same_function(self):
        from repro.core import fusion

        assert fusion.resolve_workers is resolve_workers

    def test_package_export(self):
        import repro

        assert repro.resolve_workers is resolve_workers

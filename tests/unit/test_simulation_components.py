"""Unit tests for the simulator building blocks: workloads, servers, faults,
clients, traces."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import SimulationError
from repro.machines import fig1_counter_a, mesi
from repro.simulation import (
    Client,
    Environment,
    ExecutionTrace,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    Server,
    ServerStatus,
    TraceRecordKind,
    WorkloadGenerator,
    merge_workloads,
    protocol_workload,
    round_robin_workload,
)


class TestWorkloads:
    def test_uniform_length_and_alphabet(self):
        generator = WorkloadGenerator([0, 1], seed=1)
        workload = generator.uniform(100)
        assert len(workload) == 100
        assert set(workload) <= {0, 1}

    def test_seed_determinism(self):
        a = WorkloadGenerator([0, 1, 2], seed=5).uniform(50)
        b = WorkloadGenerator([0, 1, 2], seed=5).uniform(50)
        assert a == b

    def test_weighted_generation(self):
        generator = WorkloadGenerator(["rare", "common"], seed=2, weights=[0.0, 1.0])
        assert set(generator.uniform(20)) == {"common"}

    def test_bursty_runs(self):
        workload = WorkloadGenerator([0, 1], seed=3).bursty(40, burst_length=5)
        assert len(workload) == 40

    def test_markov_stickiness_bounds(self):
        generator = WorkloadGenerator([0, 1], seed=4)
        assert len(generator.markov(30, stickiness=0.9)) == 30
        with pytest.raises(SimulationError):
            generator.markov(10, stickiness=1.5)

    def test_stream_is_endless(self):
        generator = WorkloadGenerator([0, 1], seed=6)
        assert len(list(itertools.islice(generator.stream(), 17))) == 17

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            WorkloadGenerator([])
        with pytest.raises(SimulationError):
            WorkloadGenerator([0, 1], weights=[1.0])
        with pytest.raises(SimulationError):
            WorkloadGenerator([0, 1], seed=1).uniform(-1)

    def test_round_robin(self):
        assert round_robin_workload(["a", "b"], 5) == ["a", "b", "a", "b", "a"]
        with pytest.raises(SimulationError):
            round_robin_workload([], 3)

    def test_protocol_workload(self):
        workload = protocol_workload([("open", 1), ("send", 3)])
        assert workload == ["open", "send", "send", "send"]
        with pytest.raises(SimulationError):
            protocol_workload([("open", -1)])

    def test_merge_preserves_per_client_order(self):
        merged = merge_workloads([["a1", "a2", "a3"], ["b1", "b2"]], seed=0)
        assert len(merged) == 5
        assert [e for e in merged if e.startswith("a")] == ["a1", "a2", "a3"]
        assert [e for e in merged if e.startswith("b")] == ["b1", "b2"]


class TestServer:
    def test_normal_execution(self):
        server = Server(fig1_counter_a())
        server.apply_sequence([0, 0, 1])
        assert server.report_state() == "c2"
        assert server.status is ServerStatus.HEALTHY
        assert server.is_consistent()
        assert server.events_applied == 3

    def test_crash_loses_state_but_truth_continues(self):
        server = Server(fig1_counter_a())
        server.apply(0)
        server.crash()
        assert server.report_state() is None
        server.apply(0)
        assert server.true_state == "c2"
        assert server.status is ServerStatus.CRASHED

    def test_restore_after_crash(self):
        server = Server(fig1_counter_a())
        server.apply(0)
        server.crash()
        server.apply(0)
        server.restore("c2")
        assert server.status is ServerStatus.HEALTHY
        assert server.is_consistent()

    def test_restore_rejects_unknown_state(self):
        server = Server(fig1_counter_a())
        with pytest.raises(SimulationError):
            server.restore("zz")

    def test_byzantine_corruption_changes_state(self):
        server = Server(mesi())
        target = server.corrupt(rng=np.random.default_rng(0))
        assert server.status is ServerStatus.BYZANTINE
        assert server.report_state() == target
        assert not server.is_consistent()

    def test_corrupt_with_explicit_target(self):
        server = Server(mesi())
        server.corrupt(target="M")
        assert server.report_state() == "M"

    def test_corrupt_rejects_current_state(self):
        server = Server(mesi())
        with pytest.raises(SimulationError):
            server.corrupt(target="I")

    def test_cannot_corrupt_crashed_server(self):
        server = Server(mesi())
        server.crash()
        with pytest.raises(SimulationError):
            server.corrupt()


class TestFaultPlans:
    def test_plan_counts(self):
        plan = FaultPlan(
            (
                FaultEvent("a", FaultKind.CRASH, 3),
                FaultEvent("b", FaultKind.BYZANTINE, 5),
            )
        )
        assert plan.crash_count == 1
        assert plan.byzantine_count == 1
        assert len(plan) == 2
        assert plan.faults_after(3)[0].server == "a"
        assert plan.faults_after(4) == []

    def test_duplicate_server_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan(
                (
                    FaultEvent("a", FaultKind.CRASH, 1),
                    FaultEvent("a", FaultKind.CRASH, 2),
                )
            )

    def test_injector_explicit_plan_validates_names(self):
        injector = FaultInjector(["a", "b"], seed=0)
        with pytest.raises(SimulationError):
            injector.crash_plan(["ghost"], after_event=0)

    def test_injector_duplicate_names_rejected(self):
        with pytest.raises(SimulationError):
            FaultInjector(["a", "a"])

    def test_random_plan_respects_budget(self):
        injector = FaultInjector(["a", "b", "c", "d"], seed=1)
        plan = injector.random_plan(num_crash=2, num_byzantine=1, workload_length=10)
        assert plan.crash_count == 2
        assert plan.byzantine_count == 1
        assert len(set(plan.servers)) == 3
        assert all(0 <= event.after_event <= 10 for event in plan.events)

    def test_random_plan_over_budget_rejected(self):
        injector = FaultInjector(["a", "b"], seed=1)
        with pytest.raises(SimulationError):
            injector.random_plan(num_crash=2, num_byzantine=1, workload_length=5)

    def test_random_plan_eligible_subset(self):
        injector = FaultInjector(["a", "b", "c"], seed=2)
        plan = injector.random_plan(1, 0, 5, eligible=["c"])
        assert plan.servers == ("c",)

    def test_random_plan_same_seed_identical(self):
        servers = ["a", "b", "c", "d", "e"]
        plans = [
            FaultInjector(servers, seed=17).random_plan(
                num_crash=2, num_byzantine=2, workload_length=20
            )
            for _ in range(2)
        ]
        assert plans[0].events == plans[1].events

    def test_random_plan_counts_and_bounds_hold_across_seeds(self):
        servers = ["s%d" % i for i in range(6)]
        for seed in range(8):
            plan = FaultInjector(servers, seed=seed).random_plan(
                num_crash=2, num_byzantine=3, workload_length=12
            )
            assert plan.crash_count == 2
            assert plan.byzantine_count == 3
            assert len(set(plan.servers)) == 5
            assert all(0 <= event.after_event <= 12 for event in plan.events)

    def test_faults_after_partitions_the_plan(self):
        plan = FaultInjector(["a", "b", "c"], seed=4).random_plan(
            num_crash=2, num_byzantine=1, workload_length=6
        )
        recovered = []
        for index in range(0, 7):
            batch = plan.faults_after(index)
            assert all(event.after_event == index for event in batch)
            recovered.extend(batch)
        assert sorted(recovered, key=lambda e: e.server) == sorted(
            plan.events, key=lambda e: e.server
        )

    def test_engine_faults_rejected_in_server_plans(self):
        with pytest.raises(SimulationError, match="engine_chaos"):
            FaultPlan((FaultEvent("a", FaultKind.WORKER_KILL, 0),))

    def test_engine_chaos_builder_matches_chaos_spec(self):
        from repro.core.resilience import ChaosSpec

        injector = FaultInjector(["a", "b"], seed=0)
        spec = injector.engine_chaos(
            seed=7, worker_kill=1.0, stages=["ledger_leaf"], max_faults=1
        )
        assert isinstance(spec, ChaosSpec)
        assert spec.active
        assert FaultKind.WORKER_KILL.targets_engine
        assert FaultKind.KILL_DURING_WRITE.targets_engine
        assert FaultKind.KILL_BETWEEN_LEVELS.targets_engine
        assert not FaultKind.CRASH.targets_engine
        # Same seed as the env-spec path, same deterministic draws.
        reference = ChaosSpec.parse("worker_kill=1.0,stages=ledger_leaf,max=1,seed=7")
        assert spec.draw("ledger_leaf") == reference.draw("ledger_leaf")
        assert spec.draw("ledger_leaf") is None and reference.draw("ledger_leaf") is None


class TestClientsAndEnvironment:
    def test_client_sequence(self):
        client = Client("c1", ["x", "y"])
        assert client.remaining == 2
        assert client.next_event() == "x"
        assert not client.exhausted()
        assert client.next_event() == "y"
        assert client.exhausted()
        with pytest.raises(SimulationError):
            client.next_event()

    def test_environment_merges_and_delivers(self):
        env = Environment([Client("c1", ["a", "b"]), Client("c2", ["c"])], seed=0)
        assert env.pending() == 3
        delivered = list(env)
        assert len(delivered) == 3
        assert env.pending() == 0

    def test_environment_pause_resume(self):
        env = Environment([Client("c1", ["a", "b"])], seed=0)
        env.pause()
        assert env.paused
        with pytest.raises(SimulationError):
            env.next_event()
        env.resume()
        assert env.next_event() == "a"

    def test_environment_requires_clients(self):
        with pytest.raises(SimulationError):
            Environment([])

    def test_environment_exhaustion(self):
        env = Environment([Client("c1", ["a"])], seed=0)
        env.next_event()
        with pytest.raises(SimulationError):
            env.next_event()


class TestTrace:
    def test_records_accumulate(self):
        trace = ExecutionTrace()
        trace.record_event(1, "x")
        trace.record_fault(1, "server", "crash")
        trace.record_recovery(1, {"server": "s0"}, ("liar",))
        trace.record_verification(1, True, "ok")
        trace.record_note(1, "note")
        assert len(trace) == 5
        assert trace.events_applied() == ["x"]
        assert len(trace.faults()) == 1
        assert len(trace.recoveries()) == 1
        assert trace.verifications()[0].payload["consistent"] is True
        assert trace.summary() == {
            "event": 1,
            "fault": 1,
            "recovery": 1,
            "verification": 1,
            "note": 1,
        }

    def test_records_are_immutable_tuples(self):
        trace = ExecutionTrace()
        trace.record_event(1, "x")
        record = trace.records[0]
        assert record.kind is TraceRecordKind.EVENT
        assert record.step == 1

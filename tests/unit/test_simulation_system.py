"""Unit tests for the DistributedSystem orchestration and the coordinators."""

from __future__ import annotations

import pytest

from repro import SimulationError, generate_fusion
from repro.machines import fig1_counter_a, fig1_counter_b, mesi, mod_counter
from repro.simulation import (
    DistributedSystem,
    FaultEvent,
    FaultInjector,
    FaultKind,
    ServerStatus,
    WorkloadGenerator,
)


@pytest.fixture
def counters():
    return [fig1_counter_a(), fig1_counter_b()]


@pytest.fixture(params=["vectorized", "python"])
def engine(request):
    """Every scenario runs on both execution engines: the vectorized
    default and the seed's per-server python path, so neither can
    silently diverge from the other."""
    return request.param


@pytest.fixture
def fusion_system(counters, engine):
    return DistributedSystem.with_fusion_backups(counters, f=1, engine=engine)


class TestConstruction:
    def test_fusion_factory(self, fusion_system):
        assert fusion_system.backup_scheme == "fusion"
        assert len(fusion_system.backups) == 1
        assert len(fusion_system.server_names()) == 3

    def test_replication_factory(self, counters):
        system = DistributedSystem.with_replication(counters, f=1)
        assert system.backup_scheme == "replication"
        assert len(system.backups) == 2

    def test_unprotected_factory(self, counters):
        system = DistributedSystem.unprotected(counters)
        assert system.backup_scheme == "none"
        with pytest.raises(SimulationError):
            system.recover()

    def test_prebuilt_fusion_reused(self, counters):
        fusion = generate_fusion(counters, f=1)
        system = DistributedSystem.with_fusion_backups(counters, f=1, fusion=fusion)
        assert system.backups == fusion.backups

    def test_duplicate_names_rejected(self):
        machine = mesi()
        with pytest.raises(SimulationError):
            DistributedSystem.unprotected([machine, machine.renamed("MESI")])

    def test_empty_machine_list_rejected(self):
        with pytest.raises(SimulationError):
            DistributedSystem.unprotected([])

    def test_unknown_server_lookup(self, fusion_system):
        with pytest.raises(SimulationError):
            fusion_system.server("ghost")


class TestFaultFreeRuns:
    def test_states_track_workload(self, fusion_system, counters):
        workload = [0, 1, 0, 0]
        report = fusion_system.run(workload)
        assert report.consistent
        assert report.faults_injected == 0
        assert report.recoveries == 0
        states = fusion_system.states()
        for machine in counters:
            assert states[machine.name] == machine.run(workload)

    def test_trace_records_every_event(self, fusion_system):
        report = fusion_system.run([0, 1, 1])
        assert report.trace.events_applied() == [0, 1, 1]


class TestCrashRecovery:
    def test_single_crash_recovered(self, fusion_system, counters):
        workload = WorkloadGenerator([0, 1], seed=0).uniform(30)
        injector = FaultInjector(fusion_system.server_names(), seed=1)
        plan = injector.crash_plan([counters[0].name], after_event=10)
        report = fusion_system.run(workload, fault_plan=plan)
        assert report.consistent
        assert report.faults_injected == 1
        assert report.recoveries == 1
        assert counters[0].name in report.recovered_servers

    def test_crash_of_backup_machine_recovered(self, fusion_system):
        backup_name = fusion_system.backups[0].name
        plan = FaultInjector(fusion_system.server_names(), seed=2).crash_plan(
            [backup_name], after_event=3
        )
        report = fusion_system.run([0, 1, 0, 1, 1], fault_plan=plan)
        assert report.consistent
        assert backup_name in report.recovered_servers

    def test_two_crashes_with_f2_system(self, counters, engine):
        system = DistributedSystem.with_fusion_backups(counters, f=2, engine=engine)
        names = [m.name for m in counters]
        plan = FaultInjector(system.server_names(), seed=3).crash_plan(names, after_event=5)
        report = system.run([0, 1] * 10, fault_plan=plan)
        assert report.consistent
        assert report.faults_injected == 2

    def test_deferred_recovery_at_end_of_run(self, fusion_system, counters):
        plan = FaultInjector(fusion_system.server_names(), seed=4).crash_plan(
            [counters[1].name], after_event=2
        )
        report = fusion_system.run([0, 1, 0, 1], fault_plan=plan, recover_immediately=False)
        assert report.consistent
        assert report.recoveries == 1

    def test_fault_at_time_zero(self, fusion_system, counters):
        plan = FaultInjector(fusion_system.server_names(), seed=5).crash_plan(
            [counters[0].name], after_event=0
        )
        report = fusion_system.run([0, 0, 1], fault_plan=plan)
        assert report.consistent

    def test_replication_recovers_too(self, counters, engine):
        system = DistributedSystem.with_replication(counters, f=1, engine=engine)
        plan = FaultInjector(system.server_names(), seed=6).crash_plan(
            [counters[0].name], after_event=4
        )
        report = system.run([0, 1, 1, 0, 0, 1], fault_plan=plan)
        assert report.consistent
        assert report.backup_state_space == 9


class TestByzantineRecovery:
    def test_byzantine_fault_detected_and_fixed(self, counters, engine):
        system = DistributedSystem.with_fusion_backups(counters, f=1, byzantine=True, engine=engine)
        victim = counters[0].name
        plan = FaultInjector(system.server_names(), seed=7).byzantine_plan([victim], after_event=6)
        report = system.run([0, 1] * 8, fault_plan=plan)
        assert report.consistent
        recovery = report.trace.recoveries()[0]
        assert victim in recovery.payload["suspected_byzantine"]

    def test_byzantine_replication_majority(self, counters, engine):
        system = DistributedSystem.with_replication(counters, f=1, byzantine=True, engine=engine)
        victim = counters[1].name
        plan = FaultInjector(system.server_names(), seed=8).byzantine_plan([victim], after_event=2)
        report = system.run([1, 0, 1, 1], fault_plan=plan)
        assert report.consistent

    def test_explicit_corruption_target(self, counters, engine):
        system = DistributedSystem.with_fusion_backups(counters, f=1, byzantine=True, engine=engine)
        victim = counters[0].name
        plan = FaultInjector(system.server_names(), seed=9).explicit_plan(
            [FaultEvent(victim, FaultKind.BYZANTINE, 1, corrupt_to="c2")]
        )
        report = system.run([0, 0, 0], fault_plan=plan)
        assert report.consistent


class TestManualDriving:
    def test_inject_and_recover_manually(self, fusion_system, counters):
        fusion_system.apply_event(0)
        fusion_system.apply_event(1)
        victim = counters[0].name
        fusion_system.inject_fault(FaultEvent(victim, FaultKind.CRASH, 2))
        assert fusion_system.server(victim).status is ServerStatus.CRASHED
        outcome = fusion_system.recover()
        assert victim in outcome.restored
        assert fusion_system.is_consistent()

    def test_shared_alphabet_sensor_scenario(self, engine):
        sensors = [
            mod_counter(3, count_event=e, events=(0, 1, 2), name="sensor-%d" % e)
            for e in (0, 1, 2)
        ]
        system = DistributedSystem.with_fusion_backups(sensors, f=1, engine=engine)
        assert len(system.backups) == 1
        plan = FaultInjector(system.server_names(), seed=11).crash_plan(["sensor-1"], after_event=9)
        workload = WorkloadGenerator([0, 1, 2], seed=12).uniform(25)
        report = system.run(workload, fault_plan=plan)
        assert report.consistent

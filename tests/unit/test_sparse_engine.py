"""Unit tests for the sparse engine: ledger, cutoffs, and the worker pool.

The property suite (``tests/property/test_vectorized_equivalence.py``)
establishes sparse-vs-dense equivalence statistically; these tests pin
down the discrete behaviours — cap clamping and escalation, the refusal
to materialise dense exports on large sparse graphs, worker-count
resolution, and the byte-identity of the serial and multi-process
closure paths.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.fault_graph as fault_graph_module
import repro.core.fusion as fusion_module
from repro.core.exceptions import PartitionError
from repro.core.fault_graph import FaultGraph
from repro.core.fusion import generate_fusion, resolve_workers
from repro.core.partition import Partition
from repro.core.sparse import (
    CandidateBudgetError,
    DoomedPairEngine,
    PairLedger,
    doomed_pair_keys,
    iter_pair_chunks,
    low_weight_pairs,
)
from repro.machines import mod_counter


@pytest.fixture
def forced_sparse(monkeypatch):
    """Force the sparse graph, descent and pool paths regardless of size."""
    import repro.core.sparse as sparse_module

    monkeypatch.setattr(fault_graph_module, "SPARSE_STATE_CUTOFF", 1)
    monkeypatch.setattr(fusion_module, "DESCENT_SPARSE_CUTOFF", 1)
    # Disable the minimum-work gates so workers>1 really exercises the
    # pooled descent and ledger build even on these deliberately small
    # machines.
    monkeypatch.setattr(fusion_module, "_POOL_MIN_SURVIVORS", 0)
    monkeypatch.setattr(sparse_module, "_POOL_MIN_CANDIDATES", 0)


def counters(size: int):
    return [
        mod_counter(3, count_event=e, events=tuple(range(size)), name="c%d" % e)
        for e in range(size)
    ]


# ----------------------------------------------------------------------
# PairLedger
# ----------------------------------------------------------------------
class TestPairLedger:
    def test_cap_is_clamped_to_machine_count(self):
        parts = [Partition([0, 0, 1]), Partition([0, 1, 1])]
        ledger = PairLedger.from_partitions(parts, 3, cap=10)
        assert ledger.cap == 2

    def test_unlisted_pairs_are_at_least_cap(self):
        parts = [Partition([0, 1, 2]), Partition([0, 1, 2])]  # all pairs weight 2
        ledger = PairLedger.from_partitions(parts, 3, cap=2)
        assert ledger.nnz == 0 and ledger.min_weight() is None

    def test_fold_drops_pairs_reaching_cap(self):
        parts = [Partition([0, 0, 1])]  # pair (0,1) weight 0
        ledger = PairLedger.from_partitions(parts, 3, cap=1)
        assert ledger.nnz == 1 and ledger.min_weight() == 0
        folded = ledger.fold(Partition([0, 1, 1]).labels)  # now weight 1 == cap
        assert folded.nnz == 0 and folded.min_weight() is None

    def test_low_weight_pairs_rejects_bad_cap(self):
        parts = [Partition([0, 0, 1])]
        with pytest.raises(PartitionError):
            low_weight_pairs(parts, 3, cap=0)
        with pytest.raises(PartitionError):
            low_weight_pairs(parts, 3, cap=2)

    def test_budget_refusal(self):
        parts = [Partition(np.zeros(64, dtype=np.int64))]  # one 64-state block
        with pytest.raises(CandidateBudgetError):
            low_weight_pairs(parts, 64, cap=1, budget=10)


# ----------------------------------------------------------------------
# Disjoint-leaf planning (the excluded-sibling-group rule)
# ----------------------------------------------------------------------
class TestDisjointLeafPlan:
    """Dense-reference checks of the recursive, exclusion-masked plan.

    A tiny leaf target forces deep pigeonhole recursion, where one
    machine sits in several excluded groups at once (an ancestor split's
    group and a deeper split's subgroup of it) — the exact shape where a
    leaf dropping pairs for the wrong sibling silently loses ledger
    entries.  Every (seed, cap) case is compared against brute-force
    dense weights.
    """

    @staticmethod
    def _dense_reference(label_list, num_states, cap):
        rows, cols = np.triu_indices(num_states, k=1)
        weights = np.zeros(rows.size, dtype=np.int64)
        for labels in label_list:
            weights += labels[rows] != labels[cols]
        keep = weights < cap
        return rows[keep], cols[keep], weights[keep]

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("cap,num_machines", [(2, 4), (2, 6), (3, 9), (4, 12)])
    @pytest.mark.parametrize("leaf_target", [1, 64])
    def test_recursive_plan_matches_dense(
        self, monkeypatch, seed, cap, num_machines, leaf_target
    ):
        import repro.core.sparse as sparse_module

        monkeypatch.setattr(sparse_module, "_LEAF_PAIR_TARGET", leaf_target)
        rng = np.random.default_rng(seed)
        num_states = 48
        partitions = [
            Partition(rng.integers(0, 3, size=num_states))
            for _ in range(num_machines)
        ]
        rows, cols, weights = low_weight_pairs(
            partitions, num_states, cap, budget=10**9
        )
        r_ref, c_ref, w_ref = self._dense_reference(
            [p.labels for p in partitions], num_states, cap
        )
        assert np.array_equal(np.asarray(rows, dtype=np.int64), r_ref)
        assert np.array_equal(np.asarray(cols, dtype=np.int64), c_ref)
        assert np.array_equal(np.asarray(weights, dtype=np.int64), w_ref)

    def test_leaves_are_disjoint_under_recursion(self, monkeypatch):
        """No pair key is emitted by two different leaves of one plan."""
        import repro.core.sparse as sparse_module

        rng = np.random.default_rng(7)
        num_states, cap = 48, 3
        partitions = [
            Partition(rng.integers(0, 3, size=num_states)) for _ in range(9)
        ]
        label_list = sparse_module._label_matrix_rows(
            [p.labels for p in partitions]
        )
        tasks = sparse_module._plan_leaf_tasks(label_list, cap, 10**9, leaf_target=1)
        assert any(excluded for *_rest, excluded in tasks)  # recursion engaged
        parts = [
            sparse_module._leaf_pairs(
                label_list, num_states, cap, context, remaining, joined, excluded
            )
            for context, remaining, joined, _estimate, excluded in tasks
        ]
        packed = np.concatenate([part for part in parts if part.size])
        assert np.unique(packed).size == packed.size


# ----------------------------------------------------------------------
# DoomedPairEngine truncation reporting
# ----------------------------------------------------------------------
class TestPruneStatsReporting:
    QUOTIENT = np.array([[1], [2], [2]])  # 0 -> 1 -> 2 -> 2 under one event
    WEAK = (np.array([1]), np.array([2]))

    def test_converged_run_reports_rounds_and_keys(self):
        engine = DoomedPairEngine()
        keys = engine.prune(self.QUOTIENT, *self.WEAK, 3)
        assert keys.tolist() == [1, 2, 5]  # (0,1), (0,2) and the seed (1,2)
        stats = engine.last_stats
        assert stats.rounds == 1 and not stats.truncated
        assert stats.keys == 3 and stats.spent == 2

    def test_budget_stop_sets_truncated_flag(self):
        engine = DoomedPairEngine(budget=1)
        keys = engine.prune(self.QUOTIENT, *self.WEAK, 3)
        assert keys.tolist() == [5]  # only the seed: the round was refused
        assert engine.last_stats.truncated
        assert engine.last_stats.spent == 2  # the tripping grand is charged

    def test_round_stop_sets_truncated_flag(self):
        # max_rounds=0 refuses even the first expansion round.
        engine = DoomedPairEngine(max_rounds=0)
        keys = engine.prune(self.QUOTIENT, *self.WEAK, 3)
        assert keys.tolist() == [5]
        assert engine.last_stats.truncated
        assert engine.last_stats.rounds == 0

    def test_refused_forward_round_charges_spent(self, monkeypatch):
        import repro.core.sparse as sparse_module

        # Force the forward direction, with a budget the sweep exceeds:
        # the refused round must be charged (symmetric with backward).
        monkeypatch.setattr(sparse_module, "_FORWARD_SWITCH_FACTOR", 0)
        engine = DoomedPairEngine(budget=0)
        keys = engine.prune(self.QUOTIENT, *self.WEAK, 3)
        assert keys.tolist() == [5]
        assert engine.last_stats.truncated
        assert engine.last_stats.spent == 2  # live pairs (0,1), (0,2) x 1 event

    def test_stopwatch_prune_stage_carries_stats(self, forced_sparse):
        from repro.utils.timing import Stopwatch

        from repro.machines import mesi, shift_register

        machines = [
            mesi(),
            mod_counter(3, "local_read", events=mesi().events, name="rd-ctr"),
            shift_register(
                3, bit_events=("local_read", "local_write"), events=mesi().events, name="sr"
            ),
        ]
        watch = Stopwatch()
        generate_fusion(machines, f=1, stopwatch=watch)
        prune = watch.as_dict()["prune"]
        for field in ("rounds", "forward_rounds", "spent", "truncated", "seeded"):
            assert field in prune
        assert prune["rounds"] >= 1
        assert prune["truncated"] == 0


# ----------------------------------------------------------------------
# Sparse FaultGraph behaviours
# ----------------------------------------------------------------------
class TestSparseFaultGraph:
    def test_auto_mode_respects_cutoff(self, monkeypatch):
        parts = [Partition([0, 0, 1, 1])]
        assert not FaultGraph(4, parts).is_sparse
        monkeypatch.setattr(fault_graph_module, "SPARSE_STATE_CUTOFF", 3)
        assert FaultGraph(4, parts).is_sparse

    def test_dense_exports_refused_above_cutoff(self, monkeypatch):
        monkeypatch.setattr(fault_graph_module, "DENSE_EXPORT_LIMIT", 3)
        graph = FaultGraph(5, [Partition([0, 0, 1, 1, 2])], mode="sparse")
        with pytest.raises(PartitionError):
            graph.condensed_weights
        with pytest.raises(PartitionError):
            graph.weight_matrix
        with pytest.raises(PartitionError):
            graph.edges()
        # The sparse queries still work.
        assert graph.dmin() == 0
        assert graph.weakest_edges() == [(0, 1), (2, 3)]

    def test_small_sparse_graph_materialises_dense_exports(self):
        parts = [Partition([0, 0, 1])]
        sparse = FaultGraph(3, parts, mode="sparse")
        dense = FaultGraph(3, parts, mode="dense")
        assert np.array_equal(sparse.condensed_weights, dense.condensed_weights)
        assert np.array_equal(sparse.weight_matrix, dense.weight_matrix)
        assert sparse.edges() == dense.edges()

    def test_cap_escalation_reaches_exact_dmin(self):
        # Every pair separated by both machines: dmin == m == 2, which a
        # cap-1 ledger can only learn by escalating.
        parts = [Partition([0, 1, 2]), Partition([2, 1, 0])]
        graph = FaultGraph(3, parts, mode="sparse", weight_cap=1)
        assert graph.dmin() == 2
        assert len(graph.weakest_edges()) == 3  # uniform graph: all pairs

    def test_zero_machine_sparse_graph(self):
        graph = FaultGraph(3, [], mode="sparse")
        assert graph.dmin() == 0
        assert graph.weakest_edges() == [(0, 1), (0, 2), (1, 2)]

    def test_mode_validation(self):
        with pytest.raises(PartitionError):
            FaultGraph(2, [], mode="dense-ish")
        with pytest.raises(PartitionError):
            FaultGraph(2, [], mode="sparse", weight_cap=0)


# ----------------------------------------------------------------------
# Worker resolution and the pooled descent
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_resolve_workers_explicit_wins(self):
        assert resolve_workers(0) == 0
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(10**6) == fusion_module._MAX_WORKERS

    def test_resolve_workers_serial_under_pytest(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUSION_WORKERS", raising=False)
        # PYTEST_CURRENT_TEST is set right now, so the default is serial.
        assert resolve_workers(None) == 0

    def test_resolve_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION_WORKERS", "5")
        assert resolve_workers(None) == 5
        monkeypatch.setenv("REPRO_FUSION_WORKERS", "not-a-number")
        with pytest.raises(fusion_module.FusionError):
            resolve_workers(None)

    def test_iter_pair_chunks_tiny(self):
        assert list(iter_pair_chunks(0)) == []
        assert list(iter_pair_chunks(1)) == []
        ((rows, cols),) = list(iter_pair_chunks(2))
        assert rows.tolist() == [0] and cols.tolist() == [1]

    @pytest.mark.parametrize("workers", [2, 3])
    def test_pool_matches_serial_exactly(self, forced_sparse, workers):
        """max_workers=1 vs >1 must be byte-identical (same partitions)."""
        serial = generate_fusion(counters(5), f=1, workers=1)
        pooled = generate_fusion(counters(5), f=1, workers=workers)
        assert pooled.summary() == serial.summary()
        assert [tuple(p.labels) for p in pooled.partitions] == [
            tuple(p.labels) for p in serial.partitions
        ]
        for ours, theirs in zip(pooled.backups, serial.backups):
            assert np.array_equal(ours.transition_table, theirs.transition_table)

    def test_pool_matches_serial_on_protocol_mix(self, forced_sparse):
        """A failure-dominated workload actually exercises batched pruning."""
        from repro.machines import mesi, shift_register

        machines = [
            mesi(),
            mod_counter(3, "local_read", events=mesi().events, name="rd-ctr"),
            shift_register(
                3, bit_events=("local_read", "local_write"), events=mesi().events, name="sr"
            ),
        ]
        serial = generate_fusion(machines, f=1, workers=1)
        pooled = generate_fusion(machines, f=1, workers=2)
        assert pooled.summary() == serial.summary()
        assert [tuple(p.labels) for p in pooled.partitions] == [
            tuple(p.labels) for p in serial.partitions
        ]

    def test_sparse_serial_matches_dense_engine(self, forced_sparse):
        sparse = generate_fusion(counters(4), f=1)
        assert sparse.graph.is_sparse
        # Recompute with the real cutoffs (dense) in a fresh interpreter
        # state: the frozen expected values from the dense engine.
        assert sparse.summary()["backup_sizes"] == [3]
        assert sparse.summary()["final_dmin"] == 2

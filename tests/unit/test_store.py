"""Unit tests for the checksummed container format and the artifact store.

The durability contract under test: every artifact commits atomically
and verifies on load; anything torn or bit-flipped is quarantined and
recomputed, never read; locks from dead owners are reclaimed; and a
second ``generate_fusion`` on an unchanged machine set warm-loads —
skipping ``product_build`` and ``ledger_build`` outright — with a
byte-identical result.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.exceptions import StoreCorruptionError, StoreLockTimeoutError
from repro.core.fusion import generate_fusion
from repro.core.product import CrossProduct
from repro.core.sparse import PairLedger
from repro.io.npz_io import (
    load_machines,
    machine_set_digest,
    read_container,
    save_machines,
    write_container,
)
from repro.io.store import ArtifactStore
from repro.machines import fig2_machines, mesi, mod_counter, tcp
from repro.utils.timing import Stopwatch


def _counters(size: int):
    return [
        mod_counter(3, count_event=e, events=tuple(range(size)), name="c%d" % e)
        for e in range(size)
    ]


class TestContainerFormat:
    def test_roundtrip_arrays_and_meta(self, tmp_path):
        path = str(tmp_path / "a.npz")
        arrays = {
            "order": np.arange(12, dtype=np.int64).reshape(4, 3),
            "flags": np.array([True, False, True]),
            "weights": np.linspace(0.0, 1.0, 5),
        }
        write_container(path, arrays, {"kind": "test", "n": 4})
        loaded, meta = read_container(path)
        assert meta["kind"] == "test" and meta["n"] == 4
        assert sorted(loaded) == sorted(arrays)
        for name in arrays:
            assert loaded[name].dtype == arrays[name].dtype
            assert np.array_equal(loaded[name], arrays[name])

    def test_loaded_arrays_are_zero_copy_views(self, tmp_path):
        path = str(tmp_path / "a.npz")
        write_container(path, {"x": np.arange(1000, dtype=np.int64)})
        loaded, _ = read_container(path)
        assert not loaded["x"].flags.writeable  # memory-mapped read-only

    def test_bit_flip_in_blob_detected(self, tmp_path):
        path = str(tmp_path / "a.npz")
        write_container(path, {"x": np.arange(64, dtype=np.int64)})
        with open(path, "r+b") as handle:
            handle.seek(-5, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-5, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(StoreCorruptionError):
            read_container(path)

    def test_truncation_detected(self, tmp_path):
        path = str(tmp_path / "a.npz")
        write_container(path, {"x": np.arange(64, dtype=np.int64)})
        size = os.path.getsize(path)
        os.truncate(path, size * 3 // 4)
        with pytest.raises(StoreCorruptionError):
            read_container(path)

    def test_header_tamper_detected(self, tmp_path):
        path = str(tmp_path / "a.npz")
        write_container(path, {"x": np.arange(8, dtype=np.int64)})
        with open(path, "r+b") as handle:
            handle.seek(20)
            handle.write(b"!")
        with pytest.raises(StoreCorruptionError):
            read_container(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = str(tmp_path / "a.npz")
        with open(path, "wb") as handle:
            handle.write(b"NOTAFILE" + b"\x00" * 64)
        with pytest.raises(StoreCorruptionError):
            read_container(path)

    def test_machine_set_roundtrip(self, tmp_path):
        machines = [mesi(), tcp()] + list(fig2_machines())
        path = str(tmp_path / "m.npz")
        save_machines(path, machines)
        loaded = load_machines(path)
        assert loaded == list(machines)

    def test_digest_is_order_and_content_sensitive(self):
        a = _counters(3)
        assert machine_set_digest(a) == machine_set_digest(_counters(3))
        assert machine_set_digest(a) != machine_set_digest(list(reversed(a)))
        assert machine_set_digest(a) != machine_set_digest(_counters(4))


class TestArtifactStore:
    def test_commit_then_load(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        digest = store.open_namespace(_counters(3))
        store.commit(digest, "x.npz", {"v": np.arange(5)}, {"k": 1})
        loaded = store.load(digest, "x.npz")
        assert loaded is not None
        arrays, meta = loaded
        assert np.array_equal(arrays["v"], np.arange(5)) and meta["k"] == 1
        assert store.stats.commits >= 1 and store.stats.hits == 1

    def test_missing_artifact_is_a_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        digest = store.open_namespace(_counters(3))
        assert store.load(digest, "absent.npz") is None
        assert store.stats.misses == 1

    def test_corrupt_artifact_quarantined_not_loaded(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        digest = store.open_namespace(_counters(3))
        store.commit(digest, "x.npz", {"v": np.arange(100)})
        path = store.artifact_path(digest, "x.npz")
        os.truncate(path, os.path.getsize(path) // 2)
        assert store.load(digest, "x.npz") is None
        assert not os.path.exists(path), "torn artifact must be renamed aside"
        quarantine = os.path.join(os.path.dirname(path), "quarantine")
        assert len(os.listdir(quarantine)) == 1
        assert store.stats.quarantined == 1 and store.stats.misses == 1

    def test_namespace_is_self_describing(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        machines = _counters(3)
        digest = store.open_namespace(machines)
        assert store.load_machine_set(digest) == machines

    def test_stale_temp_files_swept(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        machines = _counters(3)
        digest = store.open_namespace(machines)
        dead = os.path.join(
            str(tmp_path), digest, "x.npz.tmp-999999999-0"
        )  # pid far beyond pid_max: guaranteed dead
        with open(dead, "wb") as handle:
            handle.write(b"partial")
        fresh = ArtifactStore(str(tmp_path))
        fresh.open_namespace(machines)
        assert not os.path.exists(dead)
        assert fresh.stats.swept_tmp == 1

    def test_run_key_is_deterministic_and_parameter_sensitive(self, tmp_path):
        key = ArtifactStore.run_key(f=2, strategy="first")
        assert key == ArtifactStore.run_key(f=2, strategy="first")
        assert key != ArtifactStore.run_key(f=3, strategy="first")
        assert key != ArtifactStore.run_key(f=2, strategy="fewest_blocks")

    def test_product_roundtrip_byte_identical(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        machines = _counters(4)
        digest = store.open_namespace(machines)
        product = CrossProduct(machines)
        store.save_product(digest, product)
        warm = store.load_product(digest, machines)
        assert warm is not None
        assert np.array_equal(
            warm.machine.transition_table, product.machine.transition_table
        )
        assert np.array_equal(warm.exploration_arrays[0], product.exploration_arrays[0])

    def test_ledger_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        digest = store.open_namespace(_counters(3))
        ledger = PairLedger(
            10,
            3,
            np.array([0, 1, 2], dtype=np.int64),
            np.array([3, 4, 5], dtype=np.int64),
            np.array([1, 2, 1], dtype=np.int64),
        )
        store.save_base_ledger(digest, ledger)
        loaded = store.load_base_ledgers(digest)
        assert set(loaded) == {3}
        assert loaded[3].num_states == 10
        assert np.array_equal(loaded[3].rows, ledger.rows)
        assert np.array_equal(loaded[3].weights, ledger.weights)


class TestAdvisoryLocks:
    def test_lock_excludes_and_releases(self, tmp_path):
        store = ArtifactStore(str(tmp_path), lock_timeout=0.2)
        digest = store.open_namespace(_counters(3))
        with store.lock(digest, "run"):
            other = ArtifactStore(str(tmp_path), lock_timeout=0.2)
            with pytest.raises(StoreLockTimeoutError):
                with other.lock(digest, "run"):
                    pass
            assert other.stats.lock_waits == 1
        # Released on exit: immediately acquirable again.
        with store.lock(digest, "run"):
            pass

    def test_dead_owner_lock_reclaimed(self, tmp_path):
        store = ArtifactStore(str(tmp_path), lock_timeout=5.0)
        digest = store.open_namespace(_counters(3))
        path = os.path.join(str(tmp_path), digest, "run.lock")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"pid": 999999999, "start": 12345}))
        with store.lock(digest, "run"):
            pass  # acquired without waiting out the timeout
        assert store.stats.stale_locks == 1

    def test_recycled_pid_detected_via_start_time(self, tmp_path):
        # Same pid as a live process (ours) but an impossible start time:
        # the owner is a *previous incarnation* of the pid, hence dead.
        store = ArtifactStore(str(tmp_path), lock_timeout=5.0)
        digest = store.open_namespace(_counters(3))
        path = os.path.join(str(tmp_path), digest, "run.lock")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"pid": os.getpid(), "start": 1}))
        with store.lock(digest, "run"):
            pass
        assert store.stats.stale_locks == 1

    def test_unreadable_lock_payload_treated_as_stale(self, tmp_path):
        store = ArtifactStore(str(tmp_path), lock_timeout=5.0)
        digest = store.open_namespace(_counters(3))
        path = os.path.join(str(tmp_path), digest, "run.lock")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        with store.lock(digest, "run"):
            pass
        assert store.stats.stale_locks == 1


class TestWarmFusion:
    def test_second_call_skips_product_and_ledger_build(self, tmp_path):
        machines = _counters(5)
        reference = generate_fusion(machines, 2)
        cold_watch = Stopwatch()
        generate_fusion(machines, 2, stopwatch=cold_watch, store=str(tmp_path))
        assert "product_build" in cold_watch.as_dict()

        warm_watch = Stopwatch()
        store = ArtifactStore(str(tmp_path))
        warm = generate_fusion(machines, 2, stopwatch=warm_watch, store=store)
        stages = warm_watch.as_dict()
        # The acceptance criterion: a warm hit computes nothing.
        assert "product_build" not in stages
        assert "ledger_build" not in stages
        assert "descent" not in stages
        assert store.stats.hits >= 2 and store.stats.commits == 0

        assert warm.summary() == reference.summary()
        for ours, theirs in zip(warm.backups, reference.backups):
            assert ours.name == theirs.name
            assert np.array_equal(ours.transition_table, theirs.transition_table)
        assert [tuple(p.labels) for p in warm.partitions] == [
            tuple(p.labels) for p in reference.partitions
        ]

    def test_store_stage_counters_recorded(self, tmp_path):
        machines = _counters(4)
        watch = Stopwatch()
        generate_fusion(machines, 2, stopwatch=watch, store=str(tmp_path))
        extras = watch.extras("store")
        assert extras["commits"] >= 3  # product + per-backup + result at least
        assert extras["checkpoints"] >= 1
        assert extras["quarantined"] == 0

    def test_corrupt_product_recomputed_transparently(self, tmp_path):
        machines = _counters(4)
        reference = generate_fusion(machines, 2)
        store = ArtifactStore(str(tmp_path))
        generate_fusion(machines, 2, store=store)
        digest = machine_set_digest(machines)
        # Tear both the product and the result: the rerun must quarantine
        # them, recompute, and still produce identical bytes.
        for name in os.listdir(os.path.join(str(tmp_path), digest)):
            if name.startswith(("product", "result")):
                path = os.path.join(str(tmp_path), digest, name)
                os.truncate(path, os.path.getsize(path) - 7)
        rerun_store = ArtifactStore(str(tmp_path))
        rerun = generate_fusion(machines, 2, store=rerun_store)
        assert rerun_store.stats.quarantined >= 2
        assert rerun.summary() == reference.summary()
        for ours, theirs in zip(rerun.backups, reference.backups):
            assert np.array_equal(ours.transition_table, theirs.transition_table)

    def test_checkpoint_resume_is_byte_identical(self, tmp_path):
        machines = _counters(5)
        reference = generate_fusion(machines, 2)
        generate_fusion(machines, 2, store=str(tmp_path))
        digest = machine_set_digest(machines)
        namespace = os.path.join(str(tmp_path), digest)
        # Simulate a crash mid-descent: drop the finished artifacts but
        # keep the level checkpoints, then rerun.
        removed = 0
        for name in os.listdir(namespace):
            if name.startswith(("result", "backup")):
                os.unlink(os.path.join(namespace, name))
                removed += 1
        assert removed, "the cold run must have committed result artifacts"
        store = ArtifactStore(str(tmp_path))
        resumed = generate_fusion(machines, 2, store=store)
        assert store.stats.resumed_levels >= 1
        assert resumed.summary() == reference.summary()
        assert [tuple(p.labels) for p in resumed.partitions] == [
            tuple(p.labels) for p in reference.partitions
        ]

    def test_env_var_enables_store(self, tmp_path, monkeypatch):
        machines = _counters(3)
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        generate_fusion(machines, 1)
        digest = machine_set_digest(machines)
        names = os.listdir(os.path.join(str(tmp_path), digest))
        assert any(name.startswith("result-") for name in names)

    def test_no_store_means_no_files(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        generate_fusion(_counters(3), 1)
        assert os.listdir(str(tmp_path)) == []

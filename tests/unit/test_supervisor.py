"""Unit tests for the fleet supervisor and the typed fault-budget errors.

The supervisor is *vote first, restore second*: a recovery pass whose
observed fault mix (crashes + 2·liars, Theorems 1–2) exceeds the budget
must refuse to touch any server and raise a typed
:class:`FaultBudgetExceededError` naming the culprit machines — and the
error message must be identical whichever Algorithm-3 engine produced
it (per-instance dict engine or batched array engine).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import (
    FaultBudgetExceededError,
    FaultToleranceExceededError,
)
from repro.core.fault_tolerance import FaultBudget
from repro.core.fusion import generate_fusion
from repro.core.recovery import RecoveryEngine
from repro.core.runtime import BatchRecovery
from repro.machines import fig1_counter_a, fig1_counter_b
from repro.simulation.coordinator import FusionCoordinator
from repro.simulation.server import Server
from repro.simulation.supervisor import FleetStatus, FleetSupervisor
from repro.simulation.trace import ExecutionTrace

WORKLOAD = [0, 1, 0, 0, 1, 0, 1, 1]


@pytest.fixture(scope="module")
def fusion():
    return generate_fusion([fig1_counter_a(), fig1_counter_b()], f=2)


def _fleet(fusion):
    machines = list(fusion.originals) + list(fusion.backups)
    servers = {m.name: Server(m) for m in machines}
    for event in WORKLOAD:
        for server in servers.values():
            server.apply(event)
    return servers


def _supervisor(fusion, batch=False, trace=None):
    coordinator = FusionCoordinator(fusion.product, fusion.backups, batch=batch)
    return FleetSupervisor(coordinator, f=fusion.f, trace=trace)


class TestFaultBudget:
    def test_budget_arithmetic(self):
        budget = FaultBudget(3)
        assert budget.crash_budget == 3
        assert budget.byzantine_budget == 1
        assert budget.weight(1, 1) == 3
        assert budget.allows(crashes=3, byzantine=0)
        assert budget.allows(crashes=1, byzantine=1)
        assert not budget.allows(crashes=2, byzantine=1)
        assert not budget.allows(crashes=0, byzantine=2)

    def test_negative_f_rejected(self):
        with pytest.raises(ValueError):
            FaultBudget(-1)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            FaultBudget(2).allows(-1, 0)


class TestFaultBudgetExceededError:
    def test_for_crashes_names_machines(self):
        error = FaultBudgetExceededError.for_crashes(["a", "b", "c"], 2)
        assert error.culprits == ("a", "b", "c")
        assert error.observed == 3
        assert error.tolerated == 2
        assert "a, b, c" in str(error)
        assert isinstance(error, FaultToleranceExceededError)

    def test_for_budget_weighs_liars_double(self):
        error = FaultBudgetExceededError.for_budget(["a"], ["b"], 2)
        assert error.culprits == ("a", "b")
        assert error.observed == 3  # 1 crash + 2 units per liar
        assert error.tolerated == 2
        assert "suspected Byzantine" in str(error)


class TestSupervisedRecovery:
    @pytest.mark.parametrize("batch", [False, True])
    def test_crash_within_budget_is_restored(self, fusion, batch):
        servers = _fleet(fusion)
        victims = list(servers)[: fusion.f]
        for name in victims:
            servers[name].crash()
        supervisor = _supervisor(fusion, batch=batch)
        report = supervisor.oversee(servers, step=len(WORKLOAD))
        assert report.status is FleetStatus.HEALTHY
        assert set(report.crashed) == set(victims)
        assert report.weight == fusion.f
        assert all(server.is_consistent() for server in servers.values())
        assert supervisor.total_crashes_observed == fusion.f

    @pytest.mark.parametrize("batch", [False, True])
    def test_liar_within_budget_is_detected_and_corrected(self, fusion, batch):
        servers = _fleet(fusion)
        liar = next(iter(servers))
        servers[liar].corrupt(rng=np.random.default_rng(5))
        supervisor = _supervisor(fusion, batch=batch)
        report = supervisor.oversee(servers, step=len(WORKLOAD))
        assert report.status is FleetStatus.HEALTHY
        assert report.suspected_byzantine == (liar,)
        assert report.weight == 2
        assert all(server.is_consistent() for server in servers.values())
        assert supervisor.total_liars_detected == 1

    @pytest.mark.parametrize("batch", [False, True])
    def test_crashes_past_budget_degrade_without_restoring(self, fusion, batch):
        servers = _fleet(fusion)
        victims = list(servers)[: fusion.f + 1]
        for name in victims:
            servers[name].crash()
        trace = ExecutionTrace()
        supervisor = _supervisor(fusion, batch=batch, trace=trace)
        with pytest.raises(FaultBudgetExceededError) as excinfo:
            supervisor.oversee(servers, step=len(WORKLOAD))
        assert set(excinfo.value.culprits) == set(victims)
        assert excinfo.value.observed == fusion.f + 1
        assert excinfo.value.tolerated == fusion.f
        assert supervisor.status is FleetStatus.DEGRADED
        assert set(supervisor.culprits) == set(victims)
        # Never a silently wrong recovery: the crashed servers stay down.
        for name in victims:
            assert servers[name].report_state() is None
        # The degradation is on the record.
        notes = [r for r in trace.records if r.payload.get("message", "").startswith("DEGRADED")]
        assert len(notes) == 1

    @pytest.mark.parametrize("batch", [False, True])
    def test_mixed_weight_past_budget_degrades(self, fusion, batch):
        # f-1 crashes plus one liar weigh (f-1) + 2 = f+1 > f.  With
        # only f-1 crashes the true top state provably never *loses* the
        # vote (dmin = f+1 leaves at least one honest separator against
        # any wrong state), so the pass either flags the liar — tipping
        # the weight over budget — or hits an ambiguous tie; both must
        # degrade, never restore.
        servers = _fleet(fusion)
        names = list(servers)
        for name in names[: fusion.f - 1]:
            servers[name].crash()
        liar = names[fusion.f - 1]
        servers[liar].corrupt(rng=np.random.default_rng(5))
        supervisor = _supervisor(fusion, batch=batch)
        with pytest.raises(FaultBudgetExceededError) as excinfo:
            supervisor.oversee(servers, step=len(WORKLOAD))
        assert supervisor.status is FleetStatus.DEGRADED
        assert excinfo.value.tolerated == fusion.f
        assert liar in supervisor.culprits

    def test_recovered_fleet_returns_to_healthy(self, fusion):
        servers = _fleet(fusion)
        supervisor = _supervisor(fusion)
        names = list(servers)
        for name in names[: fusion.f + 1]:
            servers[name].crash()
        with pytest.raises(FaultBudgetExceededError):
            supervisor.oversee(servers, step=1)
        assert supervisor.status is FleetStatus.DEGRADED
        # Operator intervention: one server comes back within budget.
        machines = {m.name: m for m in list(fusion.originals) + list(fusion.backups)}
        revived = names[0]
        servers[revived].restore(machines[revived].initial)
        for event in WORKLOAD:
            servers[revived].apply(event)  # catches back up
        report = supervisor.oversee(servers, step=2)
        assert report.status is FleetStatus.HEALTHY
        assert supervisor.status is FleetStatus.HEALTHY
        assert supervisor.culprits == ()


class TestEngineMessageParity:
    """Satellite: the dict engine and the batched engine must raise the
    *same* typed error with the *same* message for the same overload."""

    def test_budget_error_messages_match(self, fusion):
        observations = {}
        machines = list(fusion.originals) + list(fusion.backups)
        servers = _fleet(fusion)
        for index, machine in enumerate(machines):
            observations[machine.name] = (
                None if index <= fusion.f else servers[machine.name].report_state()
            )

        engine = RecoveryEngine(fusion.product, fusion.backups)
        with pytest.raises(FaultBudgetExceededError) as from_engine:
            engine.recover(observations, strict=True, expected_max_faults=fusion.f)

        batch = BatchRecovery(fusion.product, fusion.backups)
        with pytest.raises(FaultBudgetExceededError) as from_batch:
            batch.recover(observations, strict=True, expected_max_faults=fusion.f)

        assert str(from_engine.value) == str(from_batch.value)
        assert from_engine.value.culprits == from_batch.value.culprits
        assert from_engine.value.observed == from_batch.value.observed
        assert from_engine.value.tolerated == from_batch.value.tolerated

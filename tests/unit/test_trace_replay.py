"""Unit tests for trace sequence numbers, delivery records and replay.

A trace is the run's flight recorder: every record carries a monotonic
sequence number, network deliveries are logged attempt by attempt, and
replaying the trace against fresh servers reproduces the run's final
visible states exactly — faults, recoveries and all.
"""

from __future__ import annotations

import pytest

from repro.core.exceptions import SimulationError
from repro.machines import fig1_counter_a, fig1_counter_b
from repro.simulation import DistributedSystem, FaultInjector
from repro.simulation.fabric import NetworkChaosSpec
from repro.simulation.trace import ExecutionTrace, TraceRecordKind

WORKLOAD = [0, 1, 0, 0, 1, 0, 1, 1] * 3


def _machines():
    return [fig1_counter_a(), fig1_counter_b()]


def _system(**kwargs):
    return DistributedSystem.with_fusion_backups(_machines(), f=2, **kwargs)


def _all_machines(system):
    return list(system.originals) + list(system.backups)


class TestSequenceNumbers:
    def test_seq_is_monotonic_and_dense(self):
        system = _system()
        injector = FaultInjector(system.server_names(), seed=3)
        plan = injector.crash_plan([system.server_names()[0]], after_event=5)
        system.run(WORKLOAD, fault_plan=plan)
        seqs = [record.seq for record in system.trace.records]
        assert seqs == list(range(len(seqs)))

    def test_seq_orders_records_within_one_step(self):
        trace = ExecutionTrace()
        trace.record_fault(1, "s", "crash")
        trace.record_event(1, "e")
        trace.record_recovery(1, {"s": "q0"})
        kinds = [(r.seq, r.kind) for r in trace.records]
        assert kinds == [
            (0, TraceRecordKind.FAULT),
            (1, TraceRecordKind.EVENT),
            (2, TraceRecordKind.RECOVERY),
        ]


class TestDeliveryRecords:
    def test_fabric_runs_log_deliveries(self):
        system = _system(
            network=NetworkChaosSpec.parse("drop=0.3,duplicate=0.2,seed=5")
        )
        report = system.run(WORKLOAD)
        deliveries = system.trace.deliveries()
        assert deliveries, "fabric runs must log delivery attempts"
        outcomes = system.trace.delivery_summary()
        # Every message eventually got through, exactly once per server.
        assert outcomes["delivered"] == len(WORKLOAD) * len(system.server_names())
        assert outcomes.get("dropped", 0) > 0
        assert report.delivery == outcomes

    def test_fabric_free_runs_have_no_deliveries(self):
        system = _system()
        report = system.run(WORKLOAD)
        assert system.trace.deliveries() == []
        assert system.trace.delivery_summary() == {}
        assert report.delivery is None


class TestReplay:
    @pytest.mark.parametrize("engine", ["vectorized", "python"])
    def test_replay_reproduces_crash_and_recovery(self, engine):
        system = _system(engine=engine)
        injector = FaultInjector(system.server_names(), seed=3)
        plan = injector.crash_plan(list(system.server_names())[:2], after_event=7)
        report = system.run(WORKLOAD, fault_plan=plan)
        assert report.consistent
        assert system.trace.replay(_all_machines(system)) == system.states()

    def test_replay_reproduces_byzantine_corruption(self):
        system = _system()
        injector = FaultInjector(system.server_names(), seed=3)
        plan = injector.byzantine_plan([system.server_names()[1]], after_event=4)
        report = system.run(WORKLOAD, fault_plan=plan)
        assert report.consistent
        assert system.trace.replay(_all_machines(system)) == system.states()

    def test_replay_reproduces_network_chaos_run(self):
        system = _system(
            network=NetworkChaosSpec.parse(
                "drop=0.25,duplicate=0.15,reorder=0.1,delay=0.15,seed=11"
            ),
            supervised=True,
        )
        injector = FaultInjector(system.server_names(), seed=9)
        plan = injector.crash_plan([system.server_names()[2]], after_event=10)
        report = system.run(WORKLOAD, fault_plan=plan)
        assert report.status == "healthy"
        assert system.trace.replay(_all_machines(system)) == system.states()

    def test_replay_reproduces_unrecovered_crash(self):
        # No recovery pass: the crashed server must replay to None.
        system = DistributedSystem.unprotected(_machines())
        victim = system.server_names()[0]
        system.apply_event(0)
        system.server(victim).crash()
        system.trace.record_fault(1, victim, "crash")
        system.apply_event(1)
        states = system.trace.replay(list(system.originals))
        assert states[victim] is None
        assert states == system.states()

    def test_replay_requires_matching_machines(self):
        trace = ExecutionTrace()
        trace.record_fault(0, "ghost", "crash")
        with pytest.raises(SimulationError, match="unknown server"):
            trace.replay(_machines())

    def test_replay_rejects_duplicate_machine_names(self):
        trace = ExecutionTrace()
        machine = fig1_counter_a()
        with pytest.raises(SimulationError, match="unique names"):
            trace.replay([machine, machine])

    def test_replay_needs_byzantine_target(self):
        trace = ExecutionTrace()
        machines = _machines()
        trace.record_fault(0, machines[0].name, "byzantine", detail="legacy record")
        with pytest.raises(SimulationError, match="no corruption target"):
            trace.replay(machines)

"""Unit tests for the RNG, timing and validation utilities."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import FusionError, InvalidMachineError, generate_fusion
from repro.machines import fig1_counter_a, fig1_counter_b, mesi, tcp
from repro.utils import (
    Stopwatch,
    as_generator,
    derive_seed,
    require_reachable,
    require_unique_names,
    shared_alphabet_report,
    spawn_children,
    time_callable,
    timed,
    validate_fusion_result,
    validate_machine_set,
)


class TestRng:
    def test_as_generator_from_int(self):
        a = as_generator(7)
        b = as_generator(7)
        assert a.integers(0, 100, 5).tolist() == b.integers(0, 100, 5).tolist()

    def test_as_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_as_generator_from_seed_sequence(self):
        sequence = np.random.SeedSequence(3)
        assert as_generator(sequence).integers(0, 10) == as_generator(np.random.SeedSequence(3)).integers(0, 10)

    def test_spawn_children_independent_and_reproducible(self):
        first = [g.integers(0, 1000) for g in spawn_children(11, 3)]
        second = [g.integers(0, 1000) for g in spawn_children(11, 3)]
        assert first == second
        assert len(set(first)) > 1 or len(first) == 1

    def test_spawn_children_from_generator(self):
        children = spawn_children(np.random.default_rng(1), 2)
        assert len(children) == 2

    def test_spawn_children_validation(self):
        with pytest.raises(ValueError):
            spawn_children(1, -1)

    def test_derive_seed_stable_and_salted(self):
        assert derive_seed(5, "workload") == derive_seed(5, "workload")
        assert derive_seed(5, "workload") != derive_seed(5, "faults")
        assert derive_seed(None, "x") == derive_seed(None, "x")
        assert isinstance(derive_seed("string-seed", 1, 2), int)


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.measure("work"):
            time.sleep(0.001)
        with watch.measure("work"):
            pass
        assert watch.counts()["work"] == 2
        assert watch.totals()["work"] > 0
        assert watch.mean("work") >= 0

    def test_stopwatch_unknown_bucket(self):
        with pytest.raises(KeyError):
            Stopwatch().mean("nothing")

    def test_timed_context(self):
        with timed() as elapsed:
            time.sleep(0.001)
        final = elapsed()
        assert final >= 0.001
        assert elapsed() == final  # frozen after exit

    def test_time_callable(self):
        value, seconds = time_callable(lambda: 41 + 1)
        assert value == 42
        assert seconds >= 0


class TestValidation:
    def test_unique_names_enforced(self):
        with pytest.raises(InvalidMachineError):
            require_unique_names([mesi(), mesi()])
        require_unique_names([mesi(), tcp()])

    def test_reachability_enforced(self):
        from repro import DFSM

        machine = DFSM(
            ["a", "dead"], ["x"], {"a": {"x": "a"}, "dead": {"x": "dead"}}, "a"
        )
        with pytest.raises(InvalidMachineError):
            require_reachable([machine])
        require_reachable([mesi()])

    def test_validate_machine_set(self):
        validate_machine_set([fig1_counter_a(), fig1_counter_b()])
        with pytest.raises(InvalidMachineError):
            validate_machine_set([])

    def test_shared_alphabet_report(self):
        counters = [fig1_counter_a(), fig1_counter_b()]
        report = shared_alphabet_report(counters)
        assert report["common_events"] == [0, 1]
        assert report["isolated_machines"] == []
        mixed = shared_alphabet_report([fig1_counter_a(), mesi()])
        assert "MESI" in mixed["isolated_machines"]

    def test_validate_fusion_result_accepts_algorithm_output(self, fig2_machines_pair):
        validate_fusion_result(generate_fusion(fig2_machines_pair, f=2))

    def test_validate_fusion_result_detects_insufficient_dmin(self, fig2_machines_pair):
        result = generate_fusion(fig2_machines_pair, f=1)
        broken = type(result)(
            originals=result.originals,
            backups=result.backups,
            partitions=result.partitions,
            product=result.product,
            graph=result.graph,
            f=5,  # claims more tolerance than it has
            initial_dmin=result.initial_dmin,
            final_dmin=result.final_dmin,
        )
        with pytest.raises(FusionError):
            validate_fusion_result(broken)
